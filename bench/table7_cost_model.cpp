// Table VII — "AWS costs of simulations": monthly EC2 compute + S3 storage
// cost per precision mode, for both mini-apps, using the paper's stated
// scaling rules (costmodel/aws.hpp).
//
// Two variants print:
//   1. with the paper's own published Haswell runtimes / file sizes as
//      inputs — validates the model against the printed dollar rows;
//   2. with this repo's Haswell-projected runtimes and measured
//      checkpoint/snapshot sizes — the self-contained reproduction.

#include "bench_common.hpp"
#include "costmodel/aws.hpp"

using namespace tp;

namespace {

void print_cost_table(const std::string& title, double clamr_min_s,
                      double clamr_mixed_s, double clamr_full_s,
                      double clamr_minmixed_gb, double clamr_full_gb,
                      double self_single_s, double self_double_s,
                      double self_gb) {
    const costmodel::AwsRates rates;
    // Compute costs follow each mode's own runtime; storage volumes follow
    // the paper's single common factor (the full-precision runtime), which
    // is why its min and mixed storage rows are identical dollars.
    auto clamr_cost = [&](double runtime, double size_gb) {
        auto c = costmodel::estimate_monthly_cost(
            rates, costmodel::clamr_scenario(runtime, size_gb));
        c.storage_dollars =
            costmodel::estimate_monthly_cost(
                rates, costmodel::clamr_scenario(clamr_full_s, size_gb))
                .storage_dollars;
        return c;
    };
    auto self_cost = [&](double runtime) {
        auto c = costmodel::estimate_monthly_cost(
            rates, costmodel::self_scenario(runtime, self_gb));
        c.storage_dollars =
            costmodel::estimate_monthly_cost(
                rates, costmodel::self_scenario(self_double_s, self_gb))
                .storage_dollars;
        return c;
    };
    const auto c_min = clamr_cost(clamr_min_s, clamr_minmixed_gb);
    const auto c_mixed = clamr_cost(clamr_mixed_s, clamr_minmixed_gb);
    const auto c_full = clamr_cost(clamr_full_s, clamr_full_gb);
    const auto s_single = self_cost(self_single_s);
    const auto s_double = self_cost(self_double_s);

    util::TextTable t(title);
    t.set_header({"", "Minimum Precision", "Mixed Precision",
                  "Full Precision"});
    t.add_row({"CLAMR Compute Cost", util::money(c_min.compute_dollars),
               util::money(c_mixed.compute_dollars),
               util::money(c_full.compute_dollars)});
    t.add_row({"CLAMR Storage Cost", util::money(c_min.storage_dollars),
               util::money(c_mixed.storage_dollars),
               util::money(c_full.storage_dollars)});
    t.add_row({"CLAMR Total Cost", util::money(c_min.total()),
               util::money(c_mixed.total()), util::money(c_full.total())});
    t.add_row({"SELF Compute Cost", util::money(s_single.compute_dollars),
               "-", util::money(s_double.compute_dollars)});
    t.add_row({"SELF Storage Cost", util::money(s_single.storage_dollars),
               "-", util::money(s_double.storage_dollars)});
    t.add_row({"SELF Total Cost", util::money(s_single.total()), "-",
               util::money(s_double.total())});
    t.print();
    std::printf(
        "CLAMR savings: min %.0f%%, mixed %.0f%% (paper: 23%%, 15%%); "
        "SELF savings: %.0f%% (paper: 20%%)\n\n",
        100.0 * costmodel::savings_fraction(c_full, c_min),
        100.0 * costmodel::savings_fraction(c_full, c_mixed),
        100.0 * costmodel::savings_fraction(s_double, s_single));
}

}  // namespace

int main() {
    bench::print_scale_note(
        "AWS monthly cost model (EC2 c4.8xlarge + S3, 2017 rates), paper "
        "scaling rules");

    // Variant 1: the paper's published inputs (Table I/V Haswell runtimes,
    // Table III file sizes; SELF snapshot ~0.96 GB at 24M DOF x 5 vars x
    // 8 B, paper stores the same data for both precisions).
    print_cost_table(
        "TABLE VII (inputs: paper's published measurements)", 26.3, 29.9,
        31.3, 0.086, 0.128, 179.5, 270.4, 0.96);

    // Variant 2: this repo's own runs projected onto the Haswell spec.
    const auto clamr = bench::run_clamr_suite(192, 2, 100);
    const auto self = bench::run_self_suite(6, 7, 10);
    const auto hsw = *hw::find_architecture("Haswell E5-2660 v3");
    auto p = [&](const bench::RunArtifacts& r) {
        return bench::projected_seconds(hsw, r.ledger);
    };
    // Scale projected seconds to the paper's run length so dollar rows are
    // comparable in magnitude (laptop-sized grids run far shorter).
    const double scale = 31.3 / p(clamr.at("full"));
    const double self_scale = 270.4 / p(self.at("full"));
    print_cost_table(
        "TABLE VII (inputs: this repo's runs, normalized to paper-length "
        "full-precision runs)",
        scale * p(clamr.at("minimum")), scale * p(clamr.at("mixed")),
        scale * p(clamr.at("full")),
        static_cast<double>(clamr.at("minimum").checkpoint_bytes) / 1e9 *
            (0.128 * 1e9 / clamr.at("full").checkpoint_bytes),
        0.128,
        self_scale * p(self.at("minimum")),
        self_scale * p(self.at("full")),
        0.96);

    // Extension: the compression-aware cost frontier. The paper excluded
    // compression "to keep the cost model simple"; the v2 checkpoint
    // writer makes the ratio a measured quantity (drift-rate compression
    // bounded by the 256-ULP governor budget), so the storage row becomes
    // precision x compression instead of precision alone. Ratios below
    // come from this repo's own checkpoints; runtimes stay at the paper's
    // published full-precision scale for comparable dollars.
    {
        const costmodel::AwsRates rates;
        util::TextTable t(
            "TABLE VII extension: compression-aware storage frontier "
            "(drift-rate v2 checkpoints, measured ratios)");
        t.set_header({"mode", "ckpt ratio", "storage", "total",
                      "saving vs full/raw"});
        const auto full_raw = costmodel::estimate_monthly_cost(
            rates, costmodel::clamr_scenario(31.3, 0.128));
        auto add = [&](const std::string& label, double runtime_s,
                       double size_gb, double ratio) {
            auto in = costmodel::clamr_scenario(runtime_s, size_gb);
            in.compression_ratio = ratio;
            const auto c = costmodel::estimate_monthly_cost(rates, in);
            t.add_row({label, util::fixed(ratio, 2) + "x",
                       util::money(c.storage_dollars),
                       util::money(c.total()),
                       util::fixed(100.0 * costmodel::savings_fraction(
                                               full_raw, c),
                                   0) +
                           "%"});
        };
        const double scale_gb = [&](const std::string& mode) {
            // Storage volumes follow the paper's file-size row, scaled by
            // this repo's measured per-mode checkpoint footprint.
            return 0.128 *
                   static_cast<double>(clamr.at(mode).checkpoint_bytes) /
                   static_cast<double>(clamr.at("full").checkpoint_bytes);
        }("minimum");
        add("full / raw (paper)", 31.3, 0.128, 1.0);
        add("full / drift v2", 31.3, 0.128,
            clamr.at("full").drift_compression_ratio());
        add("minimum / raw", scale * p(clamr.at("minimum")), scale_gb,
            1.0);
        add("minimum / drift v2", scale * p(clamr.at("minimum")),
            scale_gb, clamr.at("minimum").drift_compression_ratio());
        t.print();
        std::printf(
            "Reading: drift-rate compression stacks on top of the "
            "precision savings —\nthe rate is bounded by the same ULP "
            "budget the governor enforces, so the\nstored error stays "
            "under the precision policy's own noise floor.\n");
    }
    return 0;
}
