// Table VI — "SELF on different architectures" (energy): nominal TDP x
// projected runtime for single vs double precision.

#include "bench_common.hpp"

using namespace tp;

int main() {
    const int elems = 6, order = 7, steps = 10;
    bench::print_scale_note(
        "SELF thermal bubble, " + std::to_string(elems) + "^3 elements, "
        "order " + std::to_string(order) + ", " + std::to_string(steps) +
        " RK3 steps; energy = TDP x projected runtime");

    const auto runs = bench::run_self_suite(elems, order, steps);

    util::TextTable t("TABLE VI: estimated SELF energy use (Joules)");
    t.set_header(
        {"Architecture", "Single Precision", "Double Precision", "SP/DP"});
    for (const auto& arch : hw::paper_architectures()) {
        hw::PerfProjector proj(arch, bench::table_options());
        const double e_sp = hw::energy_joules(
            arch, proj.project_app_seconds(runs.at("minimum").ledger));
        const double e_dp = hw::energy_joules(
            arch, proj.project_app_seconds(runs.at("full").ledger));
        t.add_row({arch.name, util::fixed(e_sp, 2), util::fixed(e_dp, 2),
                   util::fixed(e_sp / e_dp, 2)});
    }
    t.print();
    std::printf(
        "Paper shape check: single precision saves energy on every part;\n"
        "the TITAN X shows the largest ratio (paper: 4025 vs 12425 J).\n");
    return 0;
}
