// Table IV — "Nonvectorized SELF consumes less runtime for double
// precision than for single precision with GNU compiler": the paper's
// anomaly, reproduced with two code-generation models for the
// single-precision kernels (DESIGN.md section 2):
//   * "GNU model"  : every single-precision operation round-trips through
//                    double (fp::PromotedFloat) — the code shape GNU
//                    Fortran 4.9 emitted;
//   * "Intel model": native single-precision arithmetic.
// Times are measured on this host around the RK3 loop, exactly where the
// paper put its CPU_TIME calls.

#include "bench_common.hpp"

using namespace tp;

namespace {

double run_seconds(bool promote, bool single, int elems, int order,
                   int steps) {
    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = elems;
    cfg.order = order;
    cfg.promote_each_op = promote;
    util::WallTimer t;
    if (single) {
        sem::SingleSemSolver s(cfg);
        s.initialize_thermal_bubble({});
        t.restart();
        s.run(steps);
    } else {
        sem::DoubleSemSolver s(cfg);
        s.initialize_thermal_bubble({});
        t.restart();
        s.run(steps);
    }
    return t.elapsed_seconds();
}

}  // namespace

int main() {
    const int elems = 5, order = 7, steps = 12;
    bench::print_scale_note(
        "SELF thermal bubble, " + std::to_string(elems) + "^3 elements, "
        "order " + std::to_string(order) + ", " + std::to_string(steps) +
        " RK3 steps, measured on this host (paper: 20^3 elements, 100 "
        "steps, GNU 4.9.3 vs Intel 17.0)");

    const double gnu_single = run_seconds(true, true, elems, order, steps);
    const double gnu_double = run_seconds(false, false, elems, order, steps);
    const double intel_single = run_seconds(false, true, elems, order, steps);
    const double intel_double = gnu_double;  // same native double kernels

    util::TextTable t(
        "TABLE IV: non-vectorized SELF runtime by compiler model (s)");
    t.set_header({"", "Single Precision", "Double Precision"});
    t.add_row({"GNU model (per-op promotion)", util::fixed(gnu_single, 3),
               util::fixed(gnu_double, 3)});
    t.add_row({"Intel model (native SP)", util::fixed(intel_single, 3),
               util::fixed(intel_double, 3)});
    t.print();

    std::printf(
        "Paper shape check: GNU-model single (%.3f) SLOWER than double "
        "(%.3f): %s\n"
        "                   Intel-model single (%.3f) faster than double "
        "(%.3f): %s\n",
        gnu_single, gnu_double, gnu_single > gnu_double ? "yes" : "NO",
        intel_single, intel_double,
        intel_single < intel_double ? "yes" : "NO");
    return 0;
}
