// Distributed pipeline scaling + bitwise-equivalence gate.
//
// Three sections from one binary:
//   1. Schedule x SIMD matrix on the large dam break (single thread):
//      the first row re-times a verbatim transliteration of the
//      pre-pipeline seed (BSP, per-cell flux lambda, separate full-grid
//      dt pass, three fresh fields allocated per rank per step) as the
//      1.00x baseline; the other rows are the shipped pipeline's
//      schedule x SIMD combinations with per-phase columns. The full run
//      enforces the >= 2x acceptance floor on overlap/native vs seed.
//   2. Rank scaling of the overlapped native pipeline (threads follow
//      ranks up to the host width).
//   3. Bitwise gate: gather_height() must repeat to the last bit across
//      every rank count (including one rank per row) x both schedules x
//      both SIMD modes x all three precision policies. Any single-bit
//      divergence fails the binary — this is the harness that keeps
//      "overlap/SIMD/decomposition cannot change the physics" true.
//
// `--quick` shrinks the grids for CI; the bitwise gate runs in both modes.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "par/dist_shallow.hpp"
#include "util/cli.hpp"
#include "util/threads.hpp"

using namespace tp;

namespace {

struct PhaseRun {
    double step_seconds = 0.0;
    double pack = 0.0, pre = 0.0, wait = 0.0, interior = 0.0,
           boundary = 0.0;
    std::uint64_t halo_bytes = 0;
};

template <typename P>
PhaseRun run_phases(int grid, int steps, int ranks, bool overlap,
                    simd::Mode mode) {
    par::DistConfig cfg;
    cfg.nx = cfg.ny = grid;
    cfg.ranks = ranks;
    cfg.overlap = overlap;
    cfg.simd = mode;
    par::DistributedShallowSolver<P> s(cfg);
    s.initialize_dam_break();
    s.run(steps);
    PhaseRun r;
    r.step_seconds = s.timers().total("step");
    r.pack = s.timers().total("halo_pack");
    r.pre = s.timers().total("precompute");
    r.wait = s.timers().total("halo_wait");
    r.interior = s.timers().total("interior");
    r.boundary = s.timers().total("boundary");
    r.halo_bytes = s.halo_bytes_sent();
    return r;
}

template <typename P>
std::vector<double> run_state(int grid, int steps, int ranks, bool overlap,
                              simd::Mode mode) {
    par::DistConfig cfg;
    cfg.nx = cfg.ny = grid;
    cfg.ranks = ranks;
    cfg.overlap = overlap;
    cfg.simd = mode;
    par::DistributedShallowSolver<P> s(cfg);
    s.initialize_dam_break();
    s.run(steps);
    return s.gather_height();
}

std::string ms_per_step(double seconds, int steps) {
    return util::fixed(seconds * 1e3 / steps, 3);
}

// Faithful transliteration of the pre-pipeline solver (the "seed"): BSP
// halo exchange, a separate full-grid wavespeed pass for dt, and a
// per-cell flux lambda that allocates three replacement fields every
// step. Timing-only reference — this is the denominator of the bench's
// acceptance ratio, kept verbatim so the speedup means "shipped pipeline
// vs what the repo used to do", not "native vs scalar of the same code".
class SeedReference {
public:
    SeedReference(int grid, int ranks)
        : nx_(grid), ny_(grid), ranks_count_(ranks), comm_(ranks) {
        dx_ = 100.0 / nx_;
        dy_ = 100.0 / ny_;
        ranks_.resize(static_cast<std::size_t>(ranks));
        const int base = ny_ / ranks;
        const int extra = ny_ % ranks;
        int row = 0;
        for (int r = 0; r < ranks; ++r) {
            Rank& rk = ranks_[static_cast<std::size_t>(r)];
            rk.row0 = row;
            rk.rows = base + (r < extra ? 1 : 0);
            row += rk.rows;
            const std::size_t n = static_cast<std::size_t>(rk.rows + 2) *
                                  static_cast<std::size_t>(nx_);
            rk.h.assign(n, 0.0);
            rk.hu.assign(n, 0.0);
            rk.hv.assign(n, 0.0);
        }
        const double cx = 50.0, cy = 50.0, r0 = 20.0;
        for (Rank& rk : ranks_)
            for (int j = 0; j < rk.rows; ++j)
                for (int i = 0; i < nx_; ++i) {
                    const double x = (i + 0.5) * dx_ - cx;
                    const double y = (rk.row0 + j + 0.5) * dy_ - cy;
                    rk.h[idx(rk, j + 1, i)] =
                        std::sqrt(x * x + y * y) < r0 ? 80.0 : 10.0;
                }
    }

    void run(int steps) {
        for (int s = 0; s < steps; ++s) step();
    }

private:
    struct Rank {
        int row0 = 0, rows = 0;
        std::vector<double> h, hu, hv;
    };
    std::size_t idx(const Rank&, int j, int i) const {
        return static_cast<std::size_t>(j) * static_cast<std::size_t>(nx_) +
               static_cast<std::size_t>(i);
    }

    void exchange_halos() {
        const auto nx = static_cast<std::size_t>(nx_);
        const std::size_t row_bytes = nx * 3 * sizeof(double);
        auto pack_row = [&](const Rank& rk, int lr) {
            std::vector<std::byte> buf = comm_.acquire(row_bytes);
            auto* p = reinterpret_cast<double*>(buf.data());
            for (std::size_t i = 0; i < nx; ++i) {
                p[i] = rk.h[idx(rk, lr, static_cast<int>(i))];
                p[nx + i] = rk.hu[idx(rk, lr, static_cast<int>(i))];
                p[2 * nx + i] = rk.hv[idx(rk, lr, static_cast<int>(i))];
            }
            return buf;
        };
        for (int r = 0; r < ranks_count_; ++r) {
            const Rank& rk = ranks_[static_cast<std::size_t>(r)];
            if (r > 0) comm_.send_bytes(r, r - 1, 2, pack_row(rk, 1));
            if (r + 1 < ranks_count_)
                comm_.send_bytes(r, r + 1, 1, pack_row(rk, rk.rows));
        }
        comm_.exchange();
        auto unpack_row = [&](Rank& rk, int lr, par::Message m) {
            const auto* p = reinterpret_cast<const double*>(m.bytes.data());
            for (std::size_t i = 0; i < nx; ++i) {
                rk.h[idx(rk, lr, static_cast<int>(i))] = p[i];
                rk.hu[idx(rk, lr, static_cast<int>(i))] = p[nx + i];
                rk.hv[idx(rk, lr, static_cast<int>(i))] = p[2 * nx + i];
            }
            comm_.release(std::move(m.bytes));
        };
        for (int r = 0; r < ranks_count_; ++r) {
            Rank& rk = ranks_[static_cast<std::size_t>(r)];
            if (r > 0) {
                unpack_row(rk, 0, comm_.recv(r, r - 1, 1));
            } else {
                for (int i = 0; i < nx_; ++i) {
                    rk.h[idx(rk, 0, i)] = rk.h[idx(rk, 1, i)];
                    rk.hu[idx(rk, 0, i)] = rk.hu[idx(rk, 1, i)];
                    rk.hv[idx(rk, 0, i)] = -rk.hv[idx(rk, 1, i)];
                }
            }
            if (r + 1 < ranks_count_) {
                unpack_row(rk, rk.rows + 1, comm_.recv(r, r + 1, 2));
            } else {
                for (int i = 0; i < nx_; ++i) {
                    rk.h[idx(rk, rk.rows + 1, i)] = rk.h[idx(rk, rk.rows, i)];
                    rk.hu[idx(rk, rk.rows + 1, i)] =
                        rk.hu[idx(rk, rk.rows, i)];
                    rk.hv[idx(rk, rk.rows + 1, i)] =
                        -rk.hv[idx(rk, rk.rows, i)];
                }
            }
        }
    }

    double global_dt() const {
        double rate = 0.0;
        for (const Rank& rk : ranks_)
            for (int j = 1; j <= rk.rows; ++j)
                for (int i = 0; i < nx_; ++i) {
                    const double hh = std::max(rk.h[idx(rk, j, i)], 1e-8);
                    const double inv = 1.0 / hh;
                    const double u = std::fabs(rk.hu[idx(rk, j, i)]) * inv;
                    const double v = std::fabs(rk.hv[idx(rk, j, i)]) * inv;
                    rate = std::max(rate, std::max(u, v) +
                                              std::sqrt(9.80665 * hh));
                }
        return 0.2 * std::min(dx_, dy_) / rate;
    }

    void update_rank(Rank& rk, double dt) {
        const double g = 9.80665, half = 0.5, half_g = half * g;
        const double hfloor = 1e-8;
        const double dtdx = dt / dx_, dtdy = dt / dy_;
        std::vector<double> nh(rk.h.size()), nhu(rk.hu.size()),
            nhv(rk.hv.size());
        auto flux = [&](double hL, double qnL, double qtL, double hR,
                        double qnR, double qtR, double out[3]) {
            hL = std::max(hL, hfloor);
            hR = std::max(hR, hfloor);
            const double invL = 1.0 / hL, invR = 1.0 / hR;
            const double unL = qnL * invL, unR = qnR * invR;
            const double utL = qtL * invL, utR = qtR * invR;
            const double smax = std::max(std::fabs(unL) + std::sqrt(g * hL),
                                         std::fabs(unR) + std::sqrt(g * hR));
            out[0] = half * (qnL + qnR) - half * smax * (hR - hL);
            out[1] = half * (qnL * unL + half_g * hL * hL + qnR * unR +
                             half_g * hR * hR) -
                     half * smax * (qnR - qnL);
            out[2] = half * (qnL * utL + qnR * utR) - half * smax * (qtR - qtL);
        };
        for (int j = 1; j <= rk.rows; ++j)
            for (int i = 0; i < nx_; ++i) {
                auto load = [&](int jj, int ii, bool mx, double& h,
                                double& hu, double& hv) {
                    h = rk.h[idx(rk, jj, ii)];
                    hu = rk.hu[idx(rk, jj, ii)];
                    hv = rk.hv[idx(rk, jj, ii)];
                    if (mx) hu = -hu;
                };
                double hC, huC, hvC;
                load(j, i, false, hC, huC, hvC);
                double f[3], dhx = 0, dhux = 0, dhvx = 0, dhy = 0,
                             dhuy = 0, dhvy = 0;
                double hN, huN, hvN;
                load(j, i > 0 ? i - 1 : 0, i == 0, hN, huN, hvN);
                flux(hN, huN, hvN, hC, huC, hvC, f);
                dhx += f[0]; dhux += f[1]; dhvx += f[2];
                load(j, i + 1 < nx_ ? i + 1 : nx_ - 1, i + 1 == nx_, hN,
                     huN, hvN);
                flux(hC, huC, hvC, hN, huN, hvN, f);
                dhx -= f[0]; dhux -= f[1]; dhvx -= f[2];
                load(j - 1, i, false, hN, huN, hvN);
                flux(hN, hvN, huN, hC, hvC, huC, f);
                dhy += f[0]; dhvy += f[1]; dhuy += f[2];
                load(j + 1, i, false, hN, huN, hvN);
                flux(hC, hvC, huC, hN, hvN, huN, f);
                dhy -= f[0]; dhvy -= f[1]; dhuy -= f[2];
                nh[idx(rk, j, i)] =
                    std::max(hC + dtdx * dhx + dtdy * dhy, hfloor);
                nhu[idx(rk, j, i)] = huC + dtdx * dhux + dtdy * dhuy;
                nhv[idx(rk, j, i)] = hvC + dtdx * dhvx + dtdy * dhvy;
            }
        rk.h = std::move(nh);
        rk.hu = std::move(nhu);
        rk.hv = std::move(nhv);
    }

    void step() {
        exchange_halos();
        const double dt = global_dt();
        for (Rank& rk : ranks_) update_rank(rk, dt);
    }

    int nx_, ny_, ranks_count_;
    double dx_, dy_;
    par::VirtualComm comm_;
    std::vector<Rank> ranks_;
};

}  // namespace

int main(int argc, char** argv) {
    util::ArgParser args("table_dist_scaling",
                         "distributed pipeline phase split, rank scaling, "
                         "and the bitwise decomposition gate");
    args.add_int_option("grid", "cells per side for the timing matrix",
                        "512");
    args.add_int_option("steps", "steps for the timing matrix", "40");
    args.add_flag("quick", "CI smoke mode: small grids, few steps");
    if (!args.parse(argc, argv)) return 1;
    const bool quick = args.get_flag("quick");
    const int grid = quick ? 96 : args.get_int("grid");
    const int steps = quick ? 10 : args.get_int("steps");

    bench::print_scale_note(
        "distributed dam break " + std::to_string(grid) + "^2 x" +
        std::to_string(steps) + " steps, 4 simulated ranks, 1 thread for "
        "the schedule matrix");

    // --- 1. Schedule x SIMD matrix --------------------------------------
    util::set_threads(1);
    util::TextTable t1("Schedule x SIMD on " + std::to_string(grid) +
                       "^2, full precision, 4 ranks, 1 thread");
    t1.set_header({"schedule/simd", "step ms", "pack", "pre", "wait",
                   "interior", "boundary", "speedup"});
    struct Combo {
        const char* label;
        bool overlap;
        simd::Mode mode;
    };
    const Combo combos[] = {
        {"bsp/scalar", false, simd::Mode::Scalar},
        {"bsp/native", false, simd::Mode::Native},
        {"overlap/scalar", true, simd::Mode::Scalar},
        {"overlap/native", true, simd::Mode::Native},
    };
    double base_seconds = 0.0, overlap_native_speedup = 0.0;
    {
        // Baseline: the pre-pipeline seed (BSP, per-cell lambda, separate
        // dt pass, three fresh fields per rank per step). Best-of-two.
        util::WallTimer t;
        SeedReference(grid, 4).run(steps);
        base_seconds = t.elapsed_seconds();
        t.restart();
        SeedReference(grid, 4).run(steps);
        base_seconds = std::min(base_seconds, t.elapsed_seconds());
        t1.add_row({"seed bsp/scalar", ms_per_step(base_seconds, steps),
                    "-", "-", "-", "-", "-", "1.00x"});
    }
    for (const Combo& c : combos) {
        // Best-of-two: the matrix's point is the ratio, and timings
        // jitter on a shared host.
        PhaseRun r = run_phases<fp::FullPrecision>(grid, steps, 4,
                                                   c.overlap, c.mode);
        const PhaseRun r2 = run_phases<fp::FullPrecision>(grid, steps, 4,
                                                          c.overlap, c.mode);
        if (r2.step_seconds < r.step_seconds) r = r2;
        const double speedup =
            r.step_seconds > 0.0 ? base_seconds / r.step_seconds : 0.0;
        if (std::string(c.label) == "overlap/native")
            overlap_native_speedup = speedup;
        t1.add_row({c.label, ms_per_step(r.step_seconds, steps),
                    ms_per_step(r.pack, steps), ms_per_step(r.pre, steps),
                    ms_per_step(r.wait, steps),
                    ms_per_step(r.interior, steps),
                    ms_per_step(r.boundary, steps),
                    util::fixed(speedup, 2) + "x"});
    }
    t1.print();
    std::printf("\n");

    // --- 2. Rank scaling of the overlapped native pipeline --------------
    util::set_threads(0);  // hardware default
    util::TextTable t2("Rank scaling, overlap/native, threads = min(ranks, "
                       "hw), " +
                       std::to_string(grid) + "^2");
    t2.set_header({"ranks", "step ms", "pre", "interior", "boundary",
                   "wait", "halo MiB"});
    for (const int ranks : {1, 2, 4, 8}) {
        const PhaseRun r = run_phases<fp::FullPrecision>(grid, steps, ranks,
                                                         true,
                                                         simd::Mode::Native);
        t2.add_row({std::to_string(ranks),
                    ms_per_step(r.step_seconds, steps),
                    ms_per_step(r.pre, steps),
                    ms_per_step(r.interior, steps),
                    ms_per_step(r.boundary, steps),
                    ms_per_step(r.wait, steps),
                    util::fixed(static_cast<double>(r.halo_bytes) /
                                    (1024.0 * 1024.0),
                                2)});
    }
    t2.print();
    std::printf("\n");

    // --- 3. Bitwise decomposition gate ----------------------------------
    const int ggrid = quick ? 32 : 48;
    const int gsteps = quick ? 12 : 25;
    int failures = 0;
    util::TextTable t3("Bitwise gate: gather_height across rank count x "
                       "schedule x SIMD (" +
                       std::to_string(ggrid) + "^2, " +
                       std::to_string(gsteps) + " steps)");
    t3.set_header({"policy", "combos", "verdict"});
    auto gate = [&]<typename P>(const std::string& label) {
        const std::vector<double> ref = run_state<P>(
            ggrid, gsteps, 1, false, simd::Mode::Scalar);
        int combos = 1, bad = 0;
        for (const int ranks : {1, 2, 3, ggrid})
            for (const bool overlap : {false, true})
                for (const simd::Mode mode :
                     {simd::Mode::Scalar, simd::Mode::Native}) {
                    if (ranks == 1 && !overlap && mode == simd::Mode::Scalar)
                        continue;  // that is the reference itself
                    ++combos;
                    if (run_state<P>(ggrid, gsteps, ranks, overlap, mode) !=
                        ref)
                        ++bad;
                }
        failures += bad;
        t3.add_row({label, std::to_string(combos),
                    bad == 0 ? "IDENTICAL"
                             : std::to_string(bad) + " MISMATCH"});
    };
    gate.template operator()<fp::MinimumPrecision>("minimum");
    gate.template operator()<fp::MixedPrecision>("mixed");
    gate.template operator()<fp::FullPrecision>("full");
    t3.print();

    // --- 4. Tracing-invisibility gate -----------------------------------
    // The flight recorder observes, never steers: running the same
    // pipeline with the cross-rank trace session active (rank spans +
    // message edges recording) must reproduce the untraced height field
    // bit for bit, in both schedules.
    {
        const std::string trace_path =
            (std::filesystem::temp_directory_path() /
             "table_dist_scaling.trace.json")
                .string();
        int traced_bad = 0;
        for (const bool overlap : {false, true}) {
            const std::vector<double> ref = run_state<fp::MixedPrecision>(
                ggrid, gsteps, 4, overlap, simd::Mode::Native);
            obs::trace_start(trace_path);
            const std::vector<double> traced =
                run_state<fp::MixedPrecision>(ggrid, gsteps, 4, overlap,
                                              simd::Mode::Native);
            const std::size_t events = obs::trace_stop();
            if (traced != ref) ++traced_bad;
            if (events == 0) ++traced_bad;  // the recorder saw nothing
        }
        std::remove(trace_path.c_str());
        std::printf("\ntracing gate: %s\n",
                    traced_bad == 0
                        ? "traced runs bit-identical to untraced"
                        : "TRACED RUN DIVERGED from untraced!");
        failures += traced_bad;
    }

    std::printf(
        "\noverlap/native speedup over the seed BSP scalar step: %.2fx "
        "(acceptance floor: 2.0x%s)\n%s\n",
        overlap_native_speedup, quick ? ", not enforced in --quick" : "",
        failures == 0 ? "All decompositions bit-identical."
                      : "BITWISE MISMATCH across decompositions!");
    if (failures != 0) return 1;
    if (!quick && overlap_native_speedup < 2.0) return 1;
    return 0;
}
