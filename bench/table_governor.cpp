// Runtime precision-governor study: governed step time and transition
// behavior vs. the static precision policies, for both mini-apps.
//
// Three gates back the governor design contract (DESIGN.md §11):
//   * attaching a DISABLED governor must not perturb the physics — the
//     checkpoint must be bit-identical to a plain run for every policy
//     (this is the `--governor=off` ≡ ungoverned-binary guarantee);
//   * an ENABLED governor whose budget can never be crossed must leave a
//     float-compute policy on its native path — bit-identical to the
//     plain single-precision run (the monitor only reads);
//   * a tight budget must drive the loop through BOTH transitions — at
//     least one promote (the telemetry crossed the budget) and at least
//     one demote (promoted double steps score zero drift on the float
//     lattice, so the hysteresis window fills with clean steps).
// The harness exits nonzero if any gate fails, so CI can run it as a
// smoke test (--quick).

#include <cstdio>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "fp/governor.hpp"
#include "util/cli.hpp"

using namespace tp;

namespace {

struct Sample {
    double seconds = 0.0;
    std::string checkpoint;
    std::size_t promotes = 0;
    std::size_t demotes = 0;
    std::uint64_t reduced_steps = 0;
    std::uint64_t observed_steps = 0;
};

void digest_decisions(const fp::PrecisionGovernor& gov, Sample& out) {
    for (const auto& d : gov.decisions())
        (d.action == "promote" ? out.promotes : out.demotes) += 1;
    out.reduced_steps = gov.reduced_steps(0);
    out.observed_steps = gov.observed_steps(0);
}

/// Budget the telemetry can never cross: the governor stays attached and
/// measuring, but every kernel stays demoted for the whole run.
fp::GovernorConfig uncrossable_budget() {
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = std::numeric_limits<std::uint64_t>::max();
    cfg.tail_budget_frac = 2.0;  // tail fractions live in [0, 1]
    return cfg;
}

/// Budget any nonzero drift crosses: promotes as soon as warmup ends,
/// then demotes once `hysteresis` promoted steps come back clean.
fp::GovernorConfig zero_budget() {
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = 0;
    cfg.tail_budget_frac = 0.0;
    cfg.warmup = 1;
    cfg.hysteresis = 4;
    return cfg;
}

template <typename P>
Sample run_clamr(int n, int levels, int steps,
                 const std::optional<fp::GovernorConfig>& gov_cfg) {
    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
    shallow::ShallowWaterSolver<P> s(cfg);
    std::optional<fp::PrecisionGovernor> gov;
    if (gov_cfg) {
        gov.emplace(*gov_cfg);
        s.set_governor(&*gov);
    }
    s.initialize_dam_break({});
    util::WallTimer t;
    for (int i = 0; i < steps; ++i) {
        s.step();
        if (gov) gov->end_step(s.step_count());
    }
    Sample out;
    out.seconds = t.elapsed_seconds();
    std::ostringstream os;
    s.write_checkpoint(os);
    out.checkpoint = os.str();
    if (gov && gov->enabled()) digest_decisions(*gov, out);
    return out;
}

template <typename P>
Sample run_sem(int elems, int order, int steps,
               const std::optional<fp::GovernorConfig>& gov_cfg) {
    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = elems;
    cfg.order = order;
    sem::SpectralEulerSolver<P> s(cfg);
    std::optional<fp::PrecisionGovernor> gov;
    if (gov_cfg) {
        gov.emplace(*gov_cfg);
        s.set_governor(&*gov);
    }
    s.initialize_thermal_bubble({});
    util::WallTimer t;
    for (int i = 0; i < steps; ++i) {
        s.step();
        if (gov) gov->end_step(static_cast<std::int64_t>(s.step_count()));
    }
    Sample out;
    out.seconds = t.elapsed_seconds();
    out.checkpoint = s.state_fingerprint();
    if (gov && gov->enabled()) digest_decisions(*gov, out);
    return out;
}

std::string share(std::uint64_t part, std::uint64_t total) {
    if (total == 0) return "-";
    return util::fixed(100.0 * static_cast<double>(part) /
                           static_cast<double>(total),
                       0) +
           "%";
}

}  // namespace

int main(int argc, char** argv) {
    util::ArgParser args(
        "table_governor",
        "Runtime precision governor: governed vs static step time, "
        "transition counts, and bitwise no-perturbation gates");
    args.add_int_option("grid", "CLAMR coarse cells per side", "32");
    args.add_int_option("levels", "CLAMR max AMR levels", "3");
    args.add_int_option("elems", "SEM elements per side", "4");
    args.add_int_option("order", "SEM polynomial order", "4");
    args.add_int_option("steps", "time steps per run", "40");
    args.add_flag("quick", "CI smoke mode: small grids, few steps");
    if (!args.parse(argc, argv)) return 1;

    int grid = args.get_int("grid");
    int levels = args.get_int("levels");
    int elems = args.get_int("elems");
    int order = args.get_int("order");
    int steps = args.get_int("steps");
    if (args.get_flag("quick")) {
        grid = 16;
        levels = 2;
        elems = 2;
        order = 3;
        steps = 12;
    }

    bench::print_scale_note(
        "precision governor, CLAMR dam break " + std::to_string(grid) +
        "^2 lvl" + std::to_string(levels) + " and SEM thermal bubble " +
        std::to_string(elems) + "^3 order " + std::to_string(order) + ", " +
        std::to_string(steps) + " steps");

    int failures = 0;
    auto gate = [&](const char* what, bool pass) {
        std::printf("gate: %-52s %s\n", what, pass ? "PASS" : "FAIL");
        if (!pass) ++failures;
    };

    util::TextTable table("Governed vs static runs");
    table.set_header({"App", "Policy", "Governor", "Time (s)", "Promotes",
                      "Demotes", "Reduced steps"});
    auto add_row = [&](const char* app, const char* policy,
                       const char* mode, const Sample& s, bool governed) {
        table.add_row({app, policy, mode, util::fixed(s.seconds, 4),
                       governed ? std::to_string(s.promotes) : "-",
                       governed ? std::to_string(s.demotes) : "-",
                       governed
                           ? share(s.reduced_steps, s.observed_steps)
                           : "-"});
    };

    // --- CLAMR: disabled-governor gate across every policy -------------
    {
        fp::GovernorConfig off;  // enabled = false
        const auto plain_min =
            run_clamr<fp::MinimumPrecision>(grid, levels, steps, {});
        const auto plain_mix =
            run_clamr<fp::MixedPrecision>(grid, levels, steps, {});
        const auto plain_full =
            run_clamr<fp::FullPrecision>(grid, levels, steps, {});
        gate("clamr minimum: disabled governor bit-identical",
             run_clamr<fp::MinimumPrecision>(grid, levels, steps, off)
                     .checkpoint == plain_min.checkpoint);
        gate("clamr mixed: disabled governor bit-identical",
             run_clamr<fp::MixedPrecision>(grid, levels, steps, off)
                     .checkpoint == plain_mix.checkpoint);
        gate("clamr full: disabled governor bit-identical",
             run_clamr<fp::FullPrecision>(grid, levels, steps, off)
                     .checkpoint == plain_full.checkpoint);

        // Enabled but uncrossable: minimum precision already computes in
        // float, so the demoted dispatch is the native path and the run
        // must stay bitwise identical — the monitor only reads.
        const auto uncross = run_clamr<fp::MinimumPrecision>(
            grid, levels, steps, uncrossable_budget());
        gate("clamr minimum: uncrossable budget bit-identical",
             uncross.checkpoint == plain_min.checkpoint);
        gate("clamr minimum: uncrossable budget never transitions",
             uncross.promotes == 0 && uncross.demotes == 0);

        const auto governed = run_clamr<fp::MixedPrecision>(
            grid, levels, steps, zero_budget());
        gate("clamr mixed: zero budget promotes",
             governed.promotes >= 1);
        gate("clamr mixed: promoted steps come back clean (demotes)",
             governed.demotes >= 1);

        add_row("clamr", "minimum", "off", plain_min, false);
        add_row("clamr", "mixed", "off", plain_mix, false);
        add_row("clamr", "full", "off", plain_full, false);
        add_row("clamr", "minimum", "uncrossable", uncross, true);
        add_row("clamr", "mixed", "zero-budget", governed, true);
    }

    // --- SEM: same contract on the spectral-element solver --------------
    {
        fp::GovernorConfig off;
        const auto plain_min =
            run_sem<fp::MinimumPrecision>(elems, order, steps, {});
        const auto plain_full =
            run_sem<fp::FullPrecision>(elems, order, steps, {});
        gate("sem single: disabled governor bit-identical",
             run_sem<fp::MinimumPrecision>(elems, order, steps, off)
                     .checkpoint == plain_min.checkpoint);
        gate("sem double: disabled governor bit-identical",
             run_sem<fp::FullPrecision>(elems, order, steps, off)
                     .checkpoint == plain_full.checkpoint);

        const auto uncross = run_sem<fp::MinimumPrecision>(
            elems, order, steps, uncrossable_budget());
        gate("sem single: uncrossable budget bit-identical",
             uncross.checkpoint == plain_min.checkpoint);

        const auto governed =
            run_sem<fp::FullPrecision>(elems, order, steps, zero_budget());
        gate("sem double: zero budget promotes", governed.promotes >= 1);
        gate("sem double: promoted steps come back clean (demotes)",
             governed.demotes >= 1);

        add_row("sem", "single", "off", plain_min, false);
        add_row("sem", "double", "off", plain_full, false);
        add_row("sem", "single", "uncrossable", uncross, true);
        add_row("sem", "double", "zero-budget", governed, true);
    }

    std::printf("\n");
    table.print();
    std::printf("governor gates: %s\n",
                failures == 0 ? "PASS (governor off/idle never perturbs "
                                "the physics; tight budgets drive both "
                                "transitions)"
                              : "FAIL");
    return failures == 0 ? 0 : 1;
}
