// Google-benchmark micro-benchmarks for the hot kernels and the
// reproducible-sum ladder. These complement the table harnesses: they
// measure the raw host-side effect of precision and vectorization on the
// kernels the paper's evaluation hinges on.

#include <benchmark/benchmark.h>

#include <vector>

#include "fp/half.hpp"
#include "fp/precision.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"
#include "sum/basic.hpp"
#include "sum/expansion.hpp"
#include "sum/reproducible.hpp"
#include "util/rng.hpp"

using namespace tp;

namespace {

std::vector<double> bench_random_data(std::size_t n) {
    util::Rng rng(42);
    std::vector<double> xs(n);
    for (auto& v : xs) v = rng.uniform(-1e6, 1e6);
    return xs;
}

}  // namespace

// ------------------------------------------------------------------- sums
static void BM_SumNaive(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(sum::sum_naive<double>(xs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumNaive);

static void BM_SumKahan(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(sum::sum_kahan<double>(xs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumKahan);

static void BM_SumNeumaier(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(sum::sum_neumaier<double>(xs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumNeumaier);

static void BM_SumPairwise(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(sum::sum_pairwise<double>(xs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumPairwise);

static void BM_SumReproducible(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 20);
    for (auto _ : state)
        benchmark::DoNotOptimize(sum::sum_reproducible<double>(xs).value);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumReproducible);

static void BM_SumExactExpansion(benchmark::State& state) {
    const auto xs = bench_random_data(1 << 16);  // exact sum is O(n k); keep small
    for (auto _ : state) benchmark::DoNotOptimize(sum::sum_exact(xs));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_SumExactExpansion);

// ---------------------------------------------------------- CLAMR kernels
template <typename Policy>
static void BM_ClamrStep(benchmark::State& state) {
    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 128, 128, 2};
    cfg.simd = state.range(0) != 0 ? simd::Mode::Native : simd::Mode::Scalar;
    shallow::ShallowWaterSolver<Policy> s(cfg);
    s.initialize_dam_break({});
    for (auto _ : state) benchmark::DoNotOptimize(s.step());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.mesh().num_cells()));
    state.SetLabel(std::string(Policy::name) +
                   (state.range(0) != 0 ? "/simd" : "/scalar"));
}
BENCHMARK_TEMPLATE(BM_ClamrStep, fp::MinimumPrecision)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_ClamrStep, fp::MixedPrecision)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_ClamrStep, fp::FullPrecision)->Arg(0)->Arg(1);

// ------------------------------------------------------------ SEM kernels
template <typename Policy>
static void BM_SemStep(benchmark::State& state) {
    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.order = 7;
    cfg.promote_each_op = state.range(0) != 0;
    sem::SpectralEulerSolver<Policy> s(cfg);
    s.initialize_thermal_bubble({});
    for (auto _ : state) benchmark::DoNotOptimize(s.step());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(s.num_nodes()));
    state.SetLabel(std::string(Policy::name) +
                   (cfg.promote_each_op ? "/promoted" : "/native"));
}
BENCHMARK_TEMPLATE(BM_SemStep, fp::MinimumPrecision)->Arg(0)->Arg(1);
BENCHMARK_TEMPLATE(BM_SemStep, fp::FullPrecision)->Arg(0);

// ------------------------------------------------------------------- half
static void BM_HalfEncodeDecode(benchmark::State& state) {
    util::Rng rng(7);
    std::vector<float> xs(1 << 16);
    for (auto& v : xs)
        v = static_cast<float>(rng.uniform(-60000.0, 60000.0));
    for (auto _ : state) {
        float acc = 0.0f;
        for (const float v : xs)
            acc += static_cast<float>(fp::Half(v));
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_HalfEncodeDecode);

BENCHMARK_MAIN();
