// Figure 1 — CLAMR solution slices at each precision level plus their
// pairwise differences. Paper config: 64 grid points, 2 levels of AMR,
// solution after 1000 iterations; vertical line-cut through the domain
// center. Emits fig1_clamr_slices.csv and fig1_clamr_diffs.csv for
// plotting and prints the difference metrics the paper reads off the
// figure ("typically at least five to six orders of magnitude less than
// the magnitude of the height").

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/linecut.hpp"
#include "bench_common.hpp"
#include "util/plot.hpp"

using namespace tp;

int main() {
    const int n = 64, levels = 2, steps = 1000;
    bench::print_scale_note(
        "CLAMR dam break, 64x64 coarse grid, 2 AMR levels, 1000 iterations "
        "(the paper's exact Figure 1 configuration)");

    const int fine = n << levels;
    const auto ys = analysis::face_free_positions(0.0, 100.0, fine);
    const double x0 = ys[ys.size() / 2];  // face-free x near the center

    std::vector<analysis::LineCut> cuts;
    fp::for_each_precision([&]<typename P>() {
        shallow::Config cfg;
        cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
        shallow::ShallowWaterSolver<P> s(cfg);
        s.initialize_dam_break({});
        s.run(steps);
        analysis::LineCut cut;
        cut.label = std::string(P::name);
        cut.position = ys;
        for (const double y : ys) cut.value.push_back(s.height_at(x0, y));
        cuts.push_back(std::move(cut));
    });

    const auto& cmin = cuts[0];
    const auto& cmix = cuts[1];
    const auto& cful = cuts[2];
    analysis::write_csv("fig1_clamr_slices.csv", cuts);

    const std::vector<analysis::LineCut> diffs{
        analysis::difference(cful, cmin),
        analysis::difference(cful, cmix),
        analysis::difference(cmix, cmin),
    };
    analysis::write_csv("fig1_clamr_diffs.csv", diffs);

    util::TextTable t("FIGURE 1: pairwise slice differences");
    t.set_header({"pair", "max |diff|", "max |height|", "orders below"});
    for (const auto& d : diffs) {
        double maxd = 0.0, maxh = 0.0;
        for (std::size_t i = 0; i < d.size(); ++i) {
            maxd = std::max(maxd, std::fabs(d.value[i]));
            maxh = std::max(maxh, std::fabs(cful.value[i]));
        }
        t.add_row({d.label, util::scientific(maxd, 2),
                   util::fixed(maxh, 2),
                   util::fixed(std::log10(maxh / std::max(maxd, 1e-300)),
                               1)});
    }
    std::vector<util::PlotSeries> slice_series;
    const char marks[3] = {'.', '+', 'o'};
    for (std::size_t k = 0; k < cuts.size(); ++k)
        slice_series.push_back({cuts[k].label, cuts[k].value, marks[k]});
    util::PlotOptions popt;
    popt.title = "Figure 1 (top): height along the center line-cut";
    popt.x_label = "y";
    std::printf("%s\n", util::ascii_plot(ys, slice_series, popt).c_str());

    std::vector<util::PlotSeries> diff_series;
    for (std::size_t k = 0; k < diffs.size(); ++k)
        diff_series.push_back({diffs[k].label, diffs[k].value, marks[k]});
    popt.title = "Figure 1 (bottom): pairwise differences";
    std::printf("%s\n", util::ascii_plot(ys, diff_series, popt).c_str());

    t.print();
    std::printf(
        "Wrote fig1_clamr_slices.csv / fig1_clamr_diffs.csv.\n"
        "Paper shape check: slices visually identical; |full-mixed| is the\n"
        "smallest difference; differences sit orders of magnitude below\n"
        "the solution.\n");
    return 0;
}
