// Figure 3 — precision-for-resolution trade: a minimum-precision
// high-resolution (Min-HiRes) run against a full-precision low-resolution
// (Full-LoRes) run advanced to (almost) the same simulation time with the
// same Courant number, as in the paper. The expectation: Min-HiRes
// resolves visibly more structure at comparable cost.

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/linecut.hpp"
#include "bench_common.hpp"

using namespace tp;

namespace {

/// Advance a solver until its simulation time reaches t_end.
template <typename Solver>
void run_until(Solver& s, double t_end) {
    while (s.time() < t_end) s.step();
}

double max_gradient(const analysis::LineCut& c) {
    double g = 0.0;
    for (std::size_t i = 1; i < c.size(); ++i)
        g = std::max(g, std::fabs(c.value[i] - c.value[i - 1]) /
                            (c.position[i] - c.position[i - 1]));
    return g;
}

}  // namespace

int main() {
    bench::print_scale_note(
        "CLAMR dam break: Full-LoRes 64x64 / 1 AMR level vs Min-HiRes "
        "128x128 / 2 AMR levels, same Courant number, matched simulation "
        "time");

    shallow::Config lo;
    lo.geom = {0.0, 0.0, 100.0, 100.0, 64, 64, 1};
    shallow::FullShallowSolver full_lores(lo);
    full_lores.initialize_dam_break({});

    shallow::Config hi;
    hi.geom = {0.0, 0.0, 100.0, 100.0, 128, 128, 2};
    shallow::MinimumShallowSolver min_hires(hi);
    min_hires.initialize_dam_break({});

    const double t_end = 0.5;
    util::WallTimer wt;
    run_until(full_lores, t_end);
    const double lo_seconds = wt.elapsed_seconds();
    wt.restart();
    run_until(min_hires, t_end);
    const double hi_seconds = wt.elapsed_seconds();

    const int fine = 128 << 2;
    const auto ys = analysis::face_free_positions(0.0, 100.0, fine);
    const double x0 = ys[ys.size() / 2];
    analysis::LineCut cl, ch;
    cl.label = "full_lores";
    ch.label = "min_hires";
    cl.position = ch.position = ys;
    for (const double y : ys) {
        cl.value.push_back(full_lores.height_at(x0, y));
        ch.value.push_back(min_hires.height_at(x0, y));
    }
    const std::vector<analysis::LineCut> cuts{cl, ch};
    analysis::write_csv("fig3_precision_vs_resolution.csv", cuts);

    util::TextTable t("FIGURE 3: Min-HiRes vs Full-LoRes at t=0.5");
    t.set_header(
        {"run", "cells", "host seconds", "max |dh/dy| (structure)"});
    t.add_row({"Full-LoRes (64^2, 1 level, double)",
               std::to_string(full_lores.mesh().num_cells()),
               util::fixed(lo_seconds, 3),
               util::fixed(max_gradient(cl), 2)});
    t.add_row({"Min-HiRes (128^2, 2 levels, float)",
               std::to_string(min_hires.mesh().num_cells()),
               util::fixed(hi_seconds, 3),
               util::fixed(max_gradient(ch), 2)});
    t.print();
    std::printf(
        "Wrote fig3_precision_vs_resolution.csv.\n"
        "Paper shape check: the Min-HiRes slice shows sharper fronts (more\n"
        "structure) than Full-LoRes — lower precision buys resolution.\n");
    return 0;
}
