// Figure 4 — SELF density-anomaly slice for single and double precision
// plus their difference, on a horizontal line-out through the domain
// center. Paper: differences ~O(1e-5), two orders of magnitude below the
// anomaly itself.

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/linecut.hpp"
#include "bench_common.hpp"
#include "util/plot.hpp"

using namespace tp;

int main() {
    const int elems = 6, order = 7, steps = 25;
    bench::print_scale_note(
        "SELF thermal bubble, " + std::to_string(elems) + "^3 elements, "
        "order " + std::to_string(order) + ", " + std::to_string(steps) +
        " RK3 steps (paper: 20^3 elements, order 7, 100 steps)");

    const int nsamples = 257;
    std::vector<analysis::LineCut> cuts;
    auto one = [&]<typename P>(const char* label) {
        sem::SemConfig cfg;
        cfg.nx = cfg.ny = cfg.nz = elems;
        cfg.order = order;
        sem::SpectralEulerSolver<P> s(cfg);
        s.initialize_thermal_bubble({});
        s.run(steps);
        analysis::LineCut cut;
        cut.label = label;
        cut.position = s.sample_positions_x(nsamples);
        cut.value = s.sample_density_anomaly_x(0.5 * cfg.ly, 350.0,
                                               nsamples);
        cuts.push_back(std::move(cut));
    };
    one.template operator()<fp::MinimumPrecision>("single");
    one.template operator()<fp::FullPrecision>("double");

    analysis::write_csv("fig4_self_slices.csv", cuts);
    const auto diff = analysis::difference(cuts[1], cuts[0]);
    const std::vector<analysis::LineCut> diffs{diff};
    analysis::write_csv("fig4_self_diff.csv", diffs);

    double maxd = 0.0, maxa = 0.0;
    for (std::size_t i = 0; i < diff.size(); ++i) {
        maxd = std::max(maxd, std::fabs(diff.value[i]));
        maxa = std::max(maxa, std::fabs(cuts[1].value[i]));
    }
    {
        std::vector<util::PlotSeries> ss{
            {"single", cuts[0].value, '.'},
            {"double", cuts[1].value, 'o'}};
        util::PlotOptions popt;
        popt.title = "Figure 4 (top): density anomaly along the x line-out";
        popt.x_label = "x";
        std::printf("%s\n",
                    util::ascii_plot(cuts[0].position, ss, popt).c_str());
        std::vector<util::PlotSeries> ds{{"double - single", diff.value, '*'}};
        popt.title = "Figure 4 (bottom): difference";
        std::printf("%s\n",
                    util::ascii_plot(diff.position, ds, popt).c_str());
    }
    util::TextTable t("FIGURE 4: SELF density anomaly, single vs double");
    t.set_header({"quantity", "value"});
    t.add_row({"max |rho'| (double)", util::scientific(maxa, 3)});
    t.add_row({"max |double - single|", util::scientific(maxd, 3)});
    t.add_row({"orders below solution",
               util::fixed(std::log10(maxa / std::max(maxd, 1e-300)), 1)});
    t.print();
    std::printf(
        "Wrote fig4_self_slices.csv / fig4_self_diff.csv.\n"
        "Paper shape check: slices visually identical; the difference sits\n"
        "~2+ orders of magnitude below the anomaly.\n");
    return 0;
}
