// Ablation: reproducible global sums under domain decomposition — the
// paper's §III.C, run live. A distributed dam break evolves identically
// on every rank count (bitwise), but its global mass *diagnostic* is only
// as reproducible as the reduction algorithm: naive and Kahan sums change
// with the decomposition; the K-fold reproducible and exact-expansion
// sums do not. This is the enabling result ("from about 7 digits of
// precision to 15 ... within a few bits of perfect reproducibility",
// citing Robey, Demmel & Nguyen) that lets the rest of the calculation
// drop to lower precision.

#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "par/dist_shallow.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace tp;

int main() {
    std::printf(
        "# Scale note: distributed dam break, 96x96 uniform grid, 60 "
        "steps,\n# simulated ranks (BSP halo exchange); paper context: "
        "Sec. III.C.\n\n");

    const std::vector<int> rank_counts{1, 2, 3, 4, 6, 8, 12};
    const std::vector<par::ReduceAlgorithm> algos{
        par::ReduceAlgorithm::Naive, par::ReduceAlgorithm::Kahan,
        par::ReduceAlgorithm::Reproducible, par::ReduceAlgorithm::Exact};

    // One solver run per rank count; all reductions evaluated on each.
    std::map<int, std::map<par::ReduceAlgorithm, double>> mass;
    std::vector<double> state_ref;
    bool state_invariant = true;
    for (const int ranks : rank_counts) {
        par::DistConfig cfg;
        cfg.nx = cfg.ny = 96;
        cfg.ranks = ranks;
        par::DistFullSolver s(cfg);
        s.initialize_dam_break();
        s.run(60);
        for (const auto a : algos) mass[ranks][a] = s.total_mass(a);
        const auto h = s.gather_height();
        if (state_ref.empty())
            state_ref = h;
        else if (h != state_ref)
            state_invariant = false;
    }

    util::TextTable t(
        "Global mass after 60 steps, by reduction algorithm and rank "
        "count (all 17 digits)");
    std::vector<std::string> header{"ranks"};
    for (const auto a : algos) header.emplace_back(par::to_string(a));
    t.set_header(header);
    for (const int ranks : rank_counts) {
        std::vector<std::string> row{std::to_string(ranks)};
        for (const auto a : algos)
            row.push_back(util::scientific(mass[ranks][a], 16));
        t.add_row(row);
    }
    t.print();

    util::TextTable v("Verdict per algorithm");
    v.set_header({"algorithm", "distinct values across rank counts",
                  "bitwise reproducible"});
    for (const auto a : algos) {
        std::set<double> distinct;
        for (const int ranks : rank_counts) distinct.insert(mass[ranks][a]);
        v.add_row({std::string(par::to_string(a)),
                   std::to_string(distinct.size()),
                   distinct.size() == 1 ? "yes" : "NO"});
    }
    v.print();

    std::printf(
        "Solver state bitwise invariant across rank counts: %s\n"
        "Paper shape check (Sec. III.C): naive parallel sums drift with\n"
        "the decomposition; reproducible/exact reductions return the same\n"
        "bits on every rank count, removing the last obstacle to running\n"
        "the bulk of the calculation at reduced precision.\n",
        state_invariant ? "yes" : "NO");
    return 0;
}
