// Figure 2 — "Height asymmetry for the CLAMR simulations": the difference
// between mirrored halves of the (ideally symmetric) line-cut, per
// precision level. The paper's observation: reduced precision amplifies
// the asymmetry, but even minimum precision stays >= 1e6x below the
// solution magnitude.

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/linecut.hpp"
#include "bench_common.hpp"
#include "util/plot.hpp"

using namespace tp;

int main() {
    const int n = 64, levels = 2, steps = 1000;
    bench::print_scale_note(
        "CLAMR dam break, 64x64 coarse grid, 2 AMR levels, 1000 iterations "
        "(the paper's Figure 2 configuration)");

    const int fine = n << levels;
    const auto ys = analysis::face_free_positions(0.0, 100.0, fine);
    const double x0 = ys[ys.size() / 2];

    std::vector<analysis::LineCut> asyms;
    double solution_scale = 0.0;
    fp::for_each_precision([&]<typename P>() {
        shallow::Config cfg;
        cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
        shallow::ShallowWaterSolver<P> s(cfg);
        s.initialize_dam_break({});
        s.run(steps);
        analysis::LineCut cut;
        cut.label = std::string(P::name);
        cut.position = ys;
        for (const double y : ys) {
            cut.value.push_back(s.height_at(x0, y));
            solution_scale = std::max(solution_scale, cut.value.back());
        }
        asyms.push_back(analysis::mirror_asymmetry(cut));
    });
    analysis::write_csv("fig2_clamr_asymmetry.csv", asyms);

    {
        std::vector<util::PlotSeries> ps;
        const char marks[3] = {'.', '+', 'o'};
        for (std::size_t k = 0; k < asyms.size(); ++k)
            ps.push_back({asyms[k].label, asyms[k].value, marks[k]});
        util::PlotOptions popt;
        popt.title = "Figure 2: mirrored-half height difference";
        popt.x_label = "y (first half)";
        std::printf("%s\n",
                    util::ascii_plot(asyms[0].position, ps, popt).c_str());
    }
    util::TextTable t("FIGURE 2: height asymmetry by precision");
    t.set_header({"precision", "max |asymmetry|", "factor below solution"});
    std::vector<double> maxima;
    for (const auto& a : asyms) {
        double m = 0.0;
        for (const double v : a.value) m = std::max(m, std::fabs(v));
        maxima.push_back(m);
        t.add_row({a.label, util::scientific(m, 2),
                   util::scientific(solution_scale / std::max(m, 1e-300),
                                    1)});
    }
    t.print();
    std::printf(
        "Wrote fig2_clamr_asymmetry.csv.\n"
        "Paper shape check: asymmetry grows as precision drops "
        "(min %.1e >= mixed %.1e >= full %.1e)\nand even minimum precision "
        "stays far below the solution scale (%.1f).\n",
        maxima[0], maxima[1], maxima[2], solution_scale);
    return 0;
}
