// Table V — "Single precision improves SELF runtimes and reduces memory
// use": per-architecture memory and runtime for single vs double
// precision, plus the speedup column. Host-measured kernel work is
// re-costed per architecture via the roofline projector.

#include "bench_common.hpp"

using namespace tp;

int main() {
    const int elems = 6, order = 7, steps = 10;
    bench::print_scale_note(
        "SELF thermal bubble, " + std::to_string(elems) + "^3 elements, "
        "order " + std::to_string(order) + " (8^3 points/element), " +
        std::to_string(steps) + " RK3 steps (paper: 20^3 elements, 100 "
        "steps, ~24M DOF)");

    const auto runs = bench::run_self_suite(elems, order, steps);

    // Memory column: state extrapolated to the paper's 20^3-element run.
    const double mem_scale =
        (20.0 / elems) * (20.0 / elems) * (20.0 / elems);
    auto mem = [&](const hw::PerfProjector& proj, const std::string& mode) {
        return bench::gb(static_cast<double>(proj.project_memory_bytes(
            static_cast<std::uint64_t>(mem_scale *
                static_cast<double>(runs.at(mode).state_bytes)))));
    };

    util::TextTable t(
        "TABLE V: SELF memory usage (GB) and projected runtime (s)");
    t.set_header({"Arch.", "Mem Single", "Mem Double", "Run Single",
                  "Run Double", "Speedup"});
    for (const auto& arch : hw::paper_architectures()) {
        hw::PerfProjector proj(arch, bench::table_options());
        const double t_sp =
            proj.project_app_seconds(runs.at("minimum").ledger);
        const double t_dp = proj.project_app_seconds(runs.at("full").ledger);
        t.add_row({
            arch.name,
            mem(proj, "minimum"),
            mem(proj, "full"),
            util::fixed(t_sp, 4),
            util::fixed(t_dp, 4),
            util::speedup_percent(t_dp / t_sp),
        });
    }
    t.print();
    std::printf(
        "Paper shape check: single precision faster everywhere; ~20-50%% on\n"
        "CPUs, ~30%% on compute GPUs (K40m/K6000/P100), and an outsized win\n"
        "on the GTX TITAN X (paper: 309%%) whose SP:DP ratio is 32:1.\n");
    return 0;
}
