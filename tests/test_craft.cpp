#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "craft/shadow.hpp"
#include "util/rng.hpp"

namespace tcr = tp::craft;

TEST(Tracked, ArithmeticMatchesBothPrecisions) {
    const tcr::Tracked a(1.0 / 3.0), b(0.1);
    const auto c = a * b + a / b - b;
    const double ref = (1.0 / 3.0) * 0.1 + (1.0 / 3.0) / 0.1 - 0.1;
    const float sh = float(1.0 / 3.0) * 0.1f + float(1.0 / 3.0) / 0.1f - 0.1f;
    EXPECT_DOUBLE_EQ(c.ref(), ref);
    EXPECT_EQ(c.shadow(), sh);
}

TEST(Tracked, MathFunctions) {
    const tcr::Tracked x(2.0);
    EXPECT_DOUBLE_EQ(sqrt(x).ref(), std::sqrt(2.0));
    EXPECT_EQ(sqrt(x).shadow(), std::sqrt(2.0f));
    EXPECT_DOUBLE_EQ(fabs(tcr::Tracked(-3.0)).ref(), 3.0);
    EXPECT_DOUBLE_EQ(max(tcr::Tracked(1.0), tcr::Tracked(2.0)).ref(), 2.0);
}

TEST(Tracked, DivergenceSmallForBenignOps) {
    tp::util::Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const tcr::Tracked a(rng.uniform(0.5, 2.0));
        const tcr::Tracked b(rng.uniform(0.5, 2.0));
        const auto c = a * b + a;
        EXPECT_LT(c.divergence(), 1e-6) << i;
    }
}

TEST(Tracked, CancellationBlowsUpShadow) {
    // (1 + eps) - 1 with eps below float resolution: the double reference
    // keeps eps, the float shadow returns 0 — 100% divergence, which is
    // exactly what a precision analysis must flag.
    const tcr::Tracked one(1.0), eps(1e-9);
    const auto r = (one + eps) - one;
    EXPECT_GT(r.divergence(), 0.99);
}

TEST(Tracked, LongAccumulationDiverges) {
    tcr::Tracked acc(0.0);
    for (int i = 0; i < 2000000; ++i) acc += tcr::Tracked(0.1);
    // Float accumulator loses several digits over 2e6 adds; double holds.
    EXPECT_GT(acc.divergence(), 1e-5);
    EXPECT_NEAR(acc.ref(), 200000.0, 1e-3);
}

TEST(ShadowLog, StatsAccumulate) {
    tcr::ShadowLog log;
    log.observe("a", tcr::Tracked(1.0, 1.0f));          // zero divergence
    log.observe("a", tcr::Tracked(1.0, 1.0f + 1e-3f));  // ~1e-3
    const auto& s = log.sites().at("a");
    EXPECT_EQ(s.samples, 2u);
    EXPECT_NEAR(s.max_rel, 1e-3, 1e-6);
    EXPECT_NEAR(s.mean_rel(), 5e-4, 1e-6);
    EXPECT_NEAR(s.worst_digits(), 3.0, 0.01);
}

TEST(ShadowLog, RecommendSeparatesSites) {
    tcr::ShadowLog log;
    log.observe("flux", tcr::Tracked(1.0, 1.0f + 1e-7f));
    log.observe("global_sum", tcr::Tracked(1.0, 1.1f));
    const auto recs = log.recommend(1e-5);
    ASSERT_EQ(recs.size(), 2u);
    for (const auto& r : recs) {
        if (r.site == "flux") {
            EXPECT_TRUE(r.float_safe);
        }
        if (r.site == "global_sum") {
            EXPECT_FALSE(r.float_safe);
        }
    }
}

TEST(ShadowLog, ReproducesClamrStyleVerdict) {
    // Miniature of the CRAFT result: per-cell flux arithmetic is
    // float-safe; the long mass accumulation is not.
    tp::util::Rng rng(11);
    tcr::ShadowLog log;
    tcr::Tracked mass(0.0);
    const tcr::Tracked g(9.80665), half(0.5);
    for (int i = 0; i < 1000000; ++i) {
        const tcr::Tracked h(rng.uniform(10.0, 80.0));
        const tcr::Tracked hu(rng.uniform(-50.0, 50.0));
        const auto u = hu / h;
        const auto flux = hu * u + half * g * h * h;
        log.observe("finite_diff:flux", flux);
        mass += h;
        log.observe("diagnostics:mass_sum", mass);
    }
    const auto recs = log.recommend(1e-6);
    bool flux_safe = false, sum_safe = true;
    for (const auto& r : recs) {
        if (r.site == "finite_diff:flux") flux_safe = r.float_safe;
        if (r.site == "diagnostics:mass_sum") sum_safe = r.float_safe;
    }
    EXPECT_TRUE(flux_safe);
    EXPECT_FALSE(sum_safe);
}

TEST(ShadowLog, ZeroReference) {
    tcr::ShadowLog log;
    log.observe("z", tcr::Tracked(0.0, 0.0f));
    EXPECT_EQ(log.sites().at("z").max_rel, 0.0);
    log.observe("z", tcr::Tracked(0.0, 1.0f));
    EXPECT_EQ(log.sites().at("z").max_rel, 1.0);
}
