#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fp/half.hpp"
#include "fp/metrics.hpp"
#include "fp/precision.hpp"
#include "fp/promoted.hpp"
#include "fp/ulp.hpp"
#include "util/rng.hpp"

namespace tf = tp::fp;

// ---------------------------------------------------------------- policies
TEST(Precision, PolicyTypes) {
    static_assert(std::is_same_v<tf::MinimumPrecision::storage_t, float>);
    static_assert(std::is_same_v<tf::MinimumPrecision::compute_t, float>);
    static_assert(std::is_same_v<tf::MixedPrecision::storage_t, float>);
    static_assert(std::is_same_v<tf::MixedPrecision::compute_t, double>);
    static_assert(std::is_same_v<tf::FullPrecision::storage_t, double>);
    static_assert(std::is_same_v<tf::FullPrecision::compute_t, double>);
    static_assert(tf::PrecisionPolicy<tf::MinimumPrecision>);
    static_assert(tf::PrecisionPolicy<tf::MixedPrecision>);
    static_assert(tf::PrecisionPolicy<tf::FullPrecision>);
    EXPECT_EQ(tf::storage_bytes<tf::MinimumPrecision>, 4u);
    EXPECT_EQ(tf::storage_bytes<tf::MixedPrecision>, 4u);
    EXPECT_EQ(tf::storage_bytes<tf::FullPrecision>, 8u);
}

TEST(Precision, ForEachVisitsAllThreeModesInOrder) {
    std::vector<tf::PrecisionMode> seen;
    tf::for_each_precision([&]<typename P>() { seen.push_back(P::mode); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], tf::PrecisionMode::Minimum);
    EXPECT_EQ(seen[1], tf::PrecisionMode::Mixed);
    EXPECT_EQ(seen[2], tf::PrecisionMode::Full);
}

TEST(Precision, ModeNames) {
    EXPECT_EQ(tf::to_string(tf::PrecisionMode::Minimum), "minimum");
    EXPECT_EQ(tf::to_string(tf::PrecisionMode::Mixed), "mixed");
    EXPECT_EQ(tf::to_string(tf::PrecisionMode::Full), "full");
    EXPECT_EQ(tf::to_string(tf::PrecisionMode::Half), "half");
}

// -------------------------------------------------------------------- half
TEST(Half, ExactSmallIntegers) {
    for (int i = -2048; i <= 2048; ++i) {
        const tf::Half h(static_cast<float>(i));
        EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << i;
    }
}

TEST(Half, KnownBitPatterns) {
    EXPECT_EQ(tf::Half(1.0f).bits(), 0x3C00u);
    EXPECT_EQ(tf::Half(-2.0f).bits(), 0xC000u);
    EXPECT_EQ(tf::Half(0.5f).bits(), 0x3800u);
    EXPECT_EQ(tf::Half(65504.0f).bits(), 0x7BFFu);  // max finite half
    EXPECT_EQ(tf::Half(0.0f).bits(), 0x0000u);
}

TEST(Half, OverflowToInfinity) {
    EXPECT_TRUE(tf::Half(1.0e6f).is_inf());
    EXPECT_TRUE(tf::Half(65520.0f).is_inf());  // rounds up past max
    EXPECT_FALSE(tf::Half(65504.0f).is_inf());
}

TEST(Half, SubnormalsRepresented) {
    // Smallest positive subnormal = 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(tf::Half(tiny).bits(), 0x0001u);
    EXPECT_EQ(static_cast<float>(tf::Half(tiny)), tiny);
    // Below half of the smallest subnormal flushes to zero.
    EXPECT_EQ(tf::Half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
}

TEST(Half, NanPropagates) {
    const tf::Half h(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(h.is_nan());
    EXPECT_TRUE(std::isnan(static_cast<float>(h)));
    EXPECT_FALSE(h == h);
}

TEST(Half, SignedZeroEquality) {
    EXPECT_TRUE(tf::Half(0.0f) == tf::Half(-0.0f));
    EXPECT_EQ(tf::Half(-0.0f).bits(), 0x8000u);
}

TEST(Half, RoundToNearestEven) {
    // 2049 is between 2048 and 2050 (spacing 2 in that binade); ties to
    // even mantissa -> 2048.
    EXPECT_EQ(static_cast<float>(tf::Half(2049.0f)), 2048.0f);
    EXPECT_EQ(static_cast<float>(tf::Half(2051.0f)), 2052.0f);
}

TEST(Half, ArithmeticRoundsThroughFloat) {
    const tf::Half a(1.5f), b(2.25f);
    EXPECT_EQ(static_cast<float>(a + b), 3.75f);
    EXPECT_EQ(static_cast<float>(a * b), 3.375f);
    EXPECT_EQ(static_cast<float>(-a), -1.5f);
}

TEST(Half, RoundTripAllFiniteBitPatterns) {
    // Every finite half converts to float and back to the identical bits.
    for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
        const auto h = tf::Half::from_bits(static_cast<std::uint16_t>(b));
        if (h.is_nan() || h.is_inf()) continue;
        const tf::Half rt(static_cast<float>(h));
        EXPECT_EQ(rt.bits(), h.bits()) << "bits=" << b;
    }
}

class HalfRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(HalfRoundTrip, ConversionErrorWithinHalfUlp) {
    tp::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 2000; ++i) {
        const float f =
            static_cast<float>(rng.uniform(-60000.0, 60000.0));
        const float back = static_cast<float>(tf::Half(f));
        // Relative error bounded by 2^-11 (half has 11 mantissa bits).
        EXPECT_LE(std::fabs(back - f),
                  std::fabs(f) * 0x1.0p-11f + 0x1.0p-24f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HalfRoundTrip, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------------- ulp
TEST(Ulp, AdjacentValuesAreOneApart) {
    const double x = 1.0;
    const double y = std::nextafter(x, 2.0);
    EXPECT_EQ(tf::ulp_distance(x, y), 1u);
    EXPECT_EQ(tf::ulp_distance(x, x), 0u);
}

TEST(Ulp, AcrossZero) {
    const float a = std::nextafter(0.0f, 1.0f);
    const float b = std::nextafter(0.0f, -1.0f);
    EXPECT_EQ(tf::ulp_distance(a, 0.0f), 1u);
    EXPECT_EQ(tf::ulp_distance(a, b), 2u);
}

TEST(Ulp, NanIsMaximallyDistant) {
    EXPECT_EQ(tf::ulp_distance(std::nan(""), 1.0),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Ulp, AlmostEqual) {
    const double x = 1.0 / 3.0;
    const double y = std::nextafter(std::nextafter(x, 1.0), 1.0);
    EXPECT_TRUE(tf::almost_equal_ulps(x, y, 2));
    EXPECT_FALSE(tf::almost_equal_ulps(x, y, 1));
}

TEST(Ulp, UlpAtScale) {
    EXPECT_DOUBLE_EQ(tf::ulp_at(1.0), 0x1.0p-52);
    EXPECT_DOUBLE_EQ(tf::ulp_at(2.0), 0x1.0p-51);
}

// ----------------------------------------------------------------- metrics
TEST(Metrics, ZeroDifference) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const auto m = tf::compare(a, a);
    EXPECT_EQ(m.l1, 0.0);
    EXPECT_EQ(m.l2, 0.0);
    EXPECT_EQ(m.linf, 0.0);
    EXPECT_EQ(m.digits_of_agreement(), 17.0);
}

TEST(Metrics, KnownNorms) {
    const std::vector<double> a{0.0, 0.0, 0.0, 4.0};
    const std::vector<double> b{1.0, -1.0, 1.0, 3.0};
    const auto m = tf::compare(a, b);
    EXPECT_DOUBLE_EQ(m.l1, 1.0);
    EXPECT_DOUBLE_EQ(m.l2, 1.0);
    EXPECT_DOUBLE_EQ(m.linf, 1.0);
    EXPECT_DOUBLE_EQ(m.ref_linf, 4.0);
    EXPECT_DOUBLE_EQ(m.rel_linf, 0.25);
}

TEST(Metrics, DigitsOfAgreementTracksMagnitude) {
    // Perturb at 1e-6 relative: ~6 digits agree (the paper's Figure 1
    // "five to six orders of magnitude" criterion).
    std::vector<double> ref(100), test(100);
    for (int i = 0; i < 100; ++i) {
        ref[static_cast<std::size_t>(i)] = 10.0 + i * 0.5;
        test[static_cast<std::size_t>(i)] =
            ref[static_cast<std::size_t>(i)] * (1.0 + 1e-6);
    }
    const auto m = tf::compare(ref, test);
    EXPECT_NEAR(m.digits_of_agreement(), 6.0, 0.2);
}

TEST(Metrics, MismatchedSizesThrow) {
    const std::vector<double> a{1.0};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_THROW((void)tf::compare(a, b), std::invalid_argument);
    const std::vector<double> empty;
    EXPECT_THROW((void)tf::compare(empty, empty), std::invalid_argument);
}

// ---------------------------------------------------------- promoted float
TEST(PromotedFloat, MatchesFloatArithmeticClosely) {
    tp::util::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const float a = static_cast<float>(rng.uniform(-100.0, 100.0));
        const float b = static_cast<float>(rng.uniform(0.5, 100.0));
        const tf::PromotedFloat pa(a), pb(b);
        // Round-tripping each op through double changes results by at most
        // one float ulp (double rounding).
        EXPECT_LE(tf::ulp_distance(static_cast<float>(pa * pb), a * b), 1u);
        EXPECT_LE(tf::ulp_distance(static_cast<float>(pa / pb), a / b), 1u);
        EXPECT_LE(tf::ulp_distance(static_cast<float>(pa + pb), a + b), 1u);
    }
}

TEST(PromotedFloat, MathHelpers) {
    using tp::fp::fabs;
    using tp::fp::max;
    using tp::fp::sqrt;
    EXPECT_EQ(static_cast<float>(sqrt(tf::PromotedFloat(4.0f))), 2.0f);
    EXPECT_EQ(static_cast<float>(fabs(tf::PromotedFloat(-3.0f))), 3.0f);
    EXPECT_EQ(static_cast<float>(
                  max(tf::PromotedFloat(1.0f), tf::PromotedFloat(2.0f))),
              2.0f);
}

// ------------------------------------------------------------- half extras
TEST(Half, OrderingOperator) {
    EXPECT_TRUE(tf::Half(1.0f) < tf::Half(2.0f));
    EXPECT_FALSE(tf::Half(2.0f) < tf::Half(1.0f));
    EXPECT_TRUE(tf::Half(-1.0f) < tf::Half(0.5f));
}

TEST(Half, ArithmeticOverflowSaturatesToInf) {
    const tf::Half big(60000.0f);
    EXPECT_TRUE((big + big).is_inf());
    EXPECT_TRUE((big * big).is_inf());
}

TEST(Half, IntConstructor) {
    EXPECT_EQ(static_cast<float>(tf::Half(7)), 7.0f);
    EXPECT_EQ(static_cast<float>(tf::Half(-1024)), -1024.0f);
}

TEST(Half, DivisionAndNegativeZero) {
    const tf::Half a(1.0f), b(2.0f);
    EXPECT_EQ(static_cast<float>(a / b), 0.5f);
    const tf::Half nz = -tf::Half(0.0f);
    EXPECT_EQ(nz.bits(), 0x8000u);
    EXPECT_TRUE(nz == tf::Half(0.0f));
}

// ----------------------------------------------------------- format extras
#include "util/format.hpp"

TEST(FormatExtras, SpeedupBelowOneIsNegative) {
    EXPECT_EQ(tp::util::speedup_percent(0.91), "-9%");
}

TEST(FormatExtras, ScientificNegative) {
    EXPECT_EQ(tp::util::scientific(-2.5e4, 1), "-2.5e+04");
}
