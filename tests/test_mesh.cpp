#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "mesh/amr_mesh.hpp"
#include "mesh/cell.hpp"

namespace tmsh = tp::mesh;

namespace {

tmsh::MeshGeometry geom(int n, int max_level) {
    tmsh::MeshGeometry g;
    g.xmin = 0.0;
    g.ymin = 0.0;
    g.width = 1.0;
    g.height = 1.0;
    g.coarse_nx = n;
    g.coarse_ny = n;
    g.max_level = max_level;
    return g;
}

std::string why(const tmsh::AmrMesh& m) {
    std::string w;
    EXPECT_TRUE(m.check_invariants(&w)) << w;
    return w;
}

}  // namespace

// ------------------------------------------------------------------- keys
TEST(CellKey, UniquePerCell) {
    std::set<std::uint64_t> keys;
    for (int l = 0; l < 4; ++l)
        for (int i = 0; i < 8; ++i)
            for (int j = 0; j < 8; ++j)
                EXPECT_TRUE(keys.insert(tmsh::cell_key(l, i, j)).second);
}

TEST(Morton, InterleavesCorrectly) {
    EXPECT_EQ(tmsh::morton2d(0, 0), 0u);
    EXPECT_EQ(tmsh::morton2d(1, 0), 1u);
    EXPECT_EQ(tmsh::morton2d(0, 1), 2u);
    EXPECT_EQ(tmsh::morton2d(1, 1), 3u);
    EXPECT_EQ(tmsh::morton2d(2, 0), 4u);
    EXPECT_EQ(tmsh::morton2d(0xFFFFFFFFu, 0xFFFFFFFFu),
              0xFFFFFFFFFFFFFFFFull);
}

TEST(Morton, AnchorsDistinguishLevels) {
    // A parent and its first child share an anchor only if levels differ;
    // leaves never overlap, so distinct leaves get distinct anchors.
    const tmsh::Cell parent{1, 2, 3};
    const tmsh::Cell child0{2, 4, 6};
    EXPECT_EQ(tmsh::morton_anchor(parent, 3), tmsh::morton_anchor(child0, 3));
    const tmsh::Cell child3{2, 5, 7};
    EXPECT_NE(tmsh::morton_anchor(parent, 3), tmsh::morton_anchor(child3, 3));
}

// ----------------------------------------------------------- construction
TEST(AmrMesh, CoarseGridConstruction) {
    tmsh::AmrMesh m(geom(8, 2));
    EXPECT_EQ(m.num_cells(), 64u);
    why(m);
    EXPECT_DOUBLE_EQ(m.cell_dx(0), 1.0 / 8.0);
    EXPECT_DOUBLE_EQ(m.cell_dx(2), 1.0 / 32.0);
}

TEST(AmrMesh, RejectsBadGeometry) {
    auto g = geom(0, 2);
    EXPECT_THROW(tmsh::AmrMesh{g}, std::invalid_argument);
    g = geom(4, -1);
    EXPECT_THROW(tmsh::AmrMesh{g}, std::invalid_argument);
    g = geom(4, 16);
    EXPECT_THROW(tmsh::AmrMesh{g}, std::invalid_argument);
}

TEST(AmrMesh, NonSquareDomain) {
    tmsh::MeshGeometry g;
    g.width = 4.0;
    g.height = 1.0;
    g.coarse_nx = 8;
    g.coarse_ny = 2;
    g.max_level = 2;
    tmsh::AmrMesh m(g);
    EXPECT_EQ(m.num_cells(), 16u);
    why(m);
    EXPECT_DOUBLE_EQ(m.cell_dx(0), 0.5);
    EXPECT_DOUBLE_EQ(m.cell_dy(0), 0.5);
}

// -------------------------------------------------------------- refinement
TEST(AmrMesh, RefineOneCellMakesFourChildren) {
    tmsh::AmrMesh m(geom(4, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[5] = tmsh::kRefineFlag;
    const auto plan = m.adapt(flags);
    EXPECT_EQ(m.num_cells(), 19u);  // 16 - 1 + 4
    EXPECT_EQ(plan.size(), m.num_cells());
    why(m);
    int refined = 0;
    for (const auto& e : plan)
        if (e.kind == tmsh::RemapKind::Refine) ++refined;
    EXPECT_EQ(refined, 4);
}

TEST(AmrMesh, RefineBeyondMaxLevelIgnored) {
    tmsh::AmrMesh m(geom(4, 0));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kRefineFlag);
    m.adapt(flags);
    EXPECT_EQ(m.num_cells(), 16u);
    why(m);
}

TEST(AmrMesh, CoarsenRequiresWholeSiblingGroup) {
    tmsh::AmrMesh m(geom(4, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[0] = tmsh::kRefineFlag;
    m.adapt(flags);
    ASSERT_EQ(m.num_cells(), 19u);

    // Flag only 3 of the 4 children: nothing may coarsen.
    std::vector<std::int8_t> partial(m.num_cells(), tmsh::kKeepFlag);
    int marked = 0;
    for (std::size_t c = 0; c < m.num_cells(); ++c)
        if (m.cells()[c].level == 1 && marked < 3) {
            partial[c] = tmsh::kCoarsenFlag;
            ++marked;
        }
    m.adapt(partial);
    EXPECT_EQ(m.num_cells(), 19u);

    // Flag all 4: the group collapses back.
    std::vector<std::int8_t> all(m.num_cells(), tmsh::kKeepFlag);
    for (std::size_t c = 0; c < m.num_cells(); ++c)
        if (m.cells()[c].level == 1) all[c] = tmsh::kCoarsenFlag;
    const auto plan = m.adapt(all);
    EXPECT_EQ(m.num_cells(), 16u);
    why(m);
    int coarsened = 0;
    for (const auto& e : plan)
        if (e.kind == tmsh::RemapKind::Coarsen) ++coarsened;
    EXPECT_EQ(coarsened, 1);
}

TEST(AmrMesh, AdaptRejectsWrongFlagCount) {
    tmsh::AmrMesh m(geom(4, 1));
    std::vector<std::int8_t> flags(3, tmsh::kKeepFlag);
    EXPECT_THROW((void)m.adapt(flags), std::invalid_argument);
}

TEST(AmrMesh, BalanceEnforced) {
    // Refine one cell twice; its neighbors must be dragged to within one
    // level even though they were never flagged.
    tmsh::AmrMesh m(geom(8, 3));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    // Refine the cell containing (0.4, 0.4) repeatedly.
    for (int round = 0; round < 3; ++round) {
        flags.assign(m.num_cells(), tmsh::kKeepFlag);
        const auto idx = m.find_cell(0.4, 0.4);
        ASSERT_GE(idx, 0);
        flags[static_cast<std::size_t>(idx)] = tmsh::kRefineFlag;
        m.adapt(flags);
        why(m);
    }
    // At least one cell reached level 3 and no invariant (including 2:1
    // balance, verified inside check_invariants) is violated.
    int deepest = 0;
    for (const auto& c : m.cells()) deepest = std::max(deepest, c.level);
    EXPECT_EQ(deepest, 3);
}

TEST(AmrMesh, RemapPlanCoversEveryNewCell) {
    tmsh::AmrMesh m(geom(8, 2));
    std::vector<std::int8_t> flags(m.num_cells());
    for (std::size_t c = 0; c < m.num_cells(); ++c)
        flags[c] = (c % 3 == 0) ? tmsh::kRefineFlag : tmsh::kKeepFlag;
    const std::size_t before = m.num_cells();
    const auto plan = m.adapt(flags);
    ASSERT_EQ(plan.size(), m.num_cells());
    for (const auto& e : plan) {
        const int nsrc = e.kind == tmsh::RemapKind::Coarsen ? 4 : 1;
        for (int s = 0; s < nsrc; ++s) {
            EXPECT_GE(e.src[s], 0);
            EXPECT_LT(static_cast<std::size_t>(e.src[s]), before);
        }
    }
}

// --------------------------------------------------------- point location
TEST(AmrMesh, FindCellLocatesLeaves) {
    tmsh::AmrMesh m(geom(4, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[static_cast<std::size_t>(m.find_cell(0.1, 0.1))] =
        tmsh::kRefineFlag;
    m.adapt(flags);
    // The refined region returns level-1 cells; elsewhere level 0.
    const auto idx_fine = m.find_cell(0.05, 0.05);
    ASSERT_GE(idx_fine, 0);
    EXPECT_EQ(m.cells()[static_cast<std::size_t>(idx_fine)].level, 1);
    const auto idx_coarse = m.find_cell(0.9, 0.9);
    ASSERT_GE(idx_coarse, 0);
    EXPECT_EQ(m.cells()[static_cast<std::size_t>(idx_coarse)].level, 0);
}

TEST(AmrMesh, FindCellOutsideDomain) {
    tmsh::AmrMesh m(geom(4, 1));
    EXPECT_EQ(m.find_cell(-0.1, 0.5), -1);
    EXPECT_EQ(m.find_cell(0.5, 1.5), -1);
}

TEST(AmrMesh, FindCellConsistentWithCenters) {
    tmsh::AmrMesh m(geom(8, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    for (std::size_t c = 0; c < m.num_cells(); c += 5)
        flags[c] = tmsh::kRefineFlag;
    m.adapt(flags);
    for (std::size_t c = 0; c < m.num_cells(); ++c) {
        const auto& cell = m.cells()[c];
        const auto found =
            m.find_cell(m.cell_center_x(cell), m.cell_center_y(cell));
        EXPECT_EQ(found, static_cast<std::int32_t>(c));
    }
}

// ------------------------------------------------------------------ faces
TEST(AmrMesh, UniformMeshFaceCounts) {
    tmsh::AmrMesh m(geom(4, 0));
    EXPECT_EQ(m.x_faces().size(), 12u);  // 3 interior columns x 4 rows
    EXPECT_EQ(m.y_faces().size(), 12u);
    EXPECT_EQ(m.boundary_faces().size(), 16u);
}

TEST(AmrMesh, FineCoarseFacesSplit) {
    tmsh::AmrMesh m(geom(2, 1));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[0] = tmsh::kRefineFlag;
    m.adapt(flags);
    why(m);  // face closure checked inside invariants
    // The refined quadrant's right edge must carry two half-size faces.
    int half_faces = 0;
    for (const auto& f : m.x_faces())
        if (f.area < 0.3) ++half_faces;
    EXPECT_GE(half_faces, 2);
}

class MeshStress : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(MeshStress, RandomAdaptCyclesKeepInvariants) {
    const auto [n, max_level, seed] = GetParam();
    tmsh::AmrMesh m(geom(n, max_level));
    std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
    auto next = [&]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int round = 0; round < 8; ++round) {
        std::vector<std::int8_t> flags(m.num_cells());
        for (auto& f : flags) {
            const auto r = next() % 10;
            f = r < 3 ? tmsh::kRefineFlag
                      : (r < 6 ? tmsh::kCoarsenFlag : tmsh::kKeepFlag);
        }
        const auto plan = m.adapt(flags);
        EXPECT_EQ(plan.size(), m.num_cells());
        std::string w;
        ASSERT_TRUE(m.check_invariants(&w))
            << "round " << round << ": " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshStress,
    ::testing::Combine(::testing::Values(4, 8), ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2)));

namespace {

// Deterministic xorshift flag generator shared by the incremental-index
// tests below.
std::vector<std::int8_t> random_flags(std::size_t n, std::uint64_t& state) {
    std::vector<std::int8_t> flags(n);
    for (auto& f : flags) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const auto r = state % 10;
        f = r < 3 ? tmsh::kRefineFlag
                  : (r < 6 ? tmsh::kCoarsenFlag : tmsh::kKeepFlag);
    }
    return flags;
}

}  // namespace

// The sorted Morton index is maintained by splicing across adapt/balance,
// never rebuilt — so after any flag sequence the leaf list must still be
// strictly ordered by finest-level anchor code.
TEST(AmrMesh, AdaptKeepsCellsMortonSorted) {
    tmsh::AmrMesh m(geom(6, 3));
    std::uint64_t state = 12345;
    for (int round = 0; round < 6; ++round) {
        const auto flags = random_flags(m.num_cells(), state);
        (void)m.adapt(flags);
        const auto& cells = m.cells();
        for (std::size_t c = 1; c < cells.size(); ++c) {
            EXPECT_LT(tmsh::morton_anchor(cells[c - 1], 3),
                      tmsh::morton_anchor(cells[c], 3))
                << "round " << round << " at index " << c;
        }
    }
}

// The hinted (galloping) lookups must agree with the plain binary search
// for every hint, including worst-case far-away ones.
TEST(AmrMesh, HintedLookupsMatchPlainSearch) {
    tmsh::AmrMesh m(geom(6, 3));
    std::uint64_t state = 999;
    for (int round = 0; round < 3; ++round)
        (void)m.adapt(random_flags(m.num_cells(), state));
    const auto& cells = m.cells();
    const auto n = static_cast<std::int32_t>(cells.size());
    for (std::int32_t c = 0; c < n; ++c) {
        const auto& cell = cells[static_cast<std::size_t>(c)];
        if (cell.i == 0) continue;
        const std::int32_t want =
            m.covering_leaf(cell.level, cell.i - 1, cell.j);
        // Hints: self (the hot-path case), both extremes, and a rotation.
        for (const std::int32_t hint : {c, std::int32_t{0}, n - 1,
                                        (c * 7 + 13) % n}) {
            EXPECT_EQ(m.covering_leaf_near(hint, cell.level, cell.i - 1,
                                           cell.j),
                      want)
                << "cell " << c << " hint " << hint;
        }
    }
}

// Copy spans must (a) cover exactly the Copy entries, (b) carry the true
// constant shift, and (c) be maximal — no two adjacent spans can merge and
// no span can extend by one entry on either side.
TEST(AmrMesh, CopySpansExactMaximalSorted) {
    tmsh::AmrMesh m(geom(8, 3));
    std::uint64_t state = 777;
    for (int round = 0; round < 5; ++round) {
        const auto plan = m.adapt(random_flags(m.num_cells(), state));
        const auto& entries = plan.entries;
        const auto& spans = plan.copy_spans;
        std::vector<bool> in_span(entries.size(), false);
        std::int32_t prev_end = 0;
        for (std::size_t k = 0; k < spans.size(); ++k) {
            const auto& s = spans[k];
            ASSERT_LT(s.begin, s.end);
            ASSERT_GE(s.begin, prev_end);  // sorted and disjoint
            for (std::int32_t c = s.begin; c < s.end; ++c) {
                ASSERT_EQ(entries[static_cast<std::size_t>(c)].kind,
                          tmsh::RemapKind::Copy);
                ASSERT_EQ(c - entries[static_cast<std::size_t>(c)].src[0],
                          s.shift);
                in_span[static_cast<std::size_t>(c)] = true;
            }
            // Maximality: the entry just before/after is not a Copy
            // continuing the same shift (adjacent spans always differ in
            // shift, otherwise they would be one span).
            if (k > 0 && spans[k - 1].end == s.begin)
                EXPECT_NE(spans[k - 1].shift, s.shift);
            const auto before = s.begin - 1;
            if (before >= 0 && !in_span[static_cast<std::size_t>(before)])
                EXPECT_TRUE(entries[static_cast<std::size_t>(before)].kind !=
                                tmsh::RemapKind::Copy ||
                            before - entries[static_cast<std::size_t>(before)]
                                         .src[0] !=
                                s.shift);
            prev_end = s.end;
        }
        for (std::size_t c = 0; c < entries.size(); ++c)
            EXPECT_EQ(in_span[c], entries[c].kind == tmsh::RemapKind::Copy)
                << "entry " << c << " round " << round;
    }
}

TEST(AmrMesh, MetadataBytesPerCell) {
    tmsh::AmrMesh m(geom(4, 1));
    EXPECT_EQ(m.metadata_bytes(), m.num_cells() * 12u);
    EXPECT_GT(m.resident_bytes(), m.metadata_bytes());
}

TEST(AmrMesh, FinestDxTracksRefinement) {
    tmsh::AmrMesh m(geom(4, 2));
    EXPECT_DOUBLE_EQ(m.finest_dx(), 0.25);
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[0] = tmsh::kRefineFlag;
    m.adapt(flags);
    EXPECT_DOUBLE_EQ(m.finest_dx(), 0.125);
}

// ------------------------------------------------------ more properties
TEST(AmrMesh, RefineThenCoarsenRestoresMesh) {
    tmsh::AmrMesh m(geom(6, 2));
    const auto before = m.cells();
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kRefineFlag);
    m.adapt(flags);
    EXPECT_EQ(m.num_cells(), before.size() * 4);
    std::vector<std::int8_t> back(m.num_cells(), tmsh::kCoarsenFlag);
    m.adapt(back);
    EXPECT_EQ(m.cells().size(), before.size());
    for (std::size_t c = 0; c < before.size(); ++c)
        EXPECT_EQ(m.cells()[c], before[c]);
    why(m);
}

TEST(AmrMesh, CoarsenOnCoarseGridIsNoOp) {
    tmsh::AmrMesh m(geom(5, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kCoarsenFlag);
    const auto plan = m.adapt(flags);
    EXPECT_EQ(m.num_cells(), 25u);
    for (const auto& e : plan) EXPECT_EQ(e.kind, tmsh::RemapKind::Copy);
}

TEST(AmrMesh, FindCellContainsQueriedPoint) {
    // Property: the returned leaf geometrically contains the query point.
    tmsh::AmrMesh m(geom(8, 3));
    std::uint64_t state = 12345;
    auto next = [&]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return static_cast<double>(state % 100000) / 100000.0;
    };
    // Random refinement to make the leaf structure irregular.
    for (int round = 0; round < 4; ++round) {
        std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
        for (auto& f : flags)
            if (next() < 0.3) f = tmsh::kRefineFlag;
        m.adapt(flags);
    }
    for (int k = 0; k < 500; ++k) {
        const double x = next();
        const double y = next();
        const auto idx = m.find_cell(x, y);
        ASSERT_GE(idx, 0);
        const auto& c = m.cells()[static_cast<std::size_t>(idx)];
        const double dx = m.cell_dx(c.level);
        const double dy = m.cell_dy(c.level);
        EXPECT_GE(x, c.i * dx - 1e-12);
        EXPECT_LT(x, (c.i + 1) * dx + 1e-12);
        EXPECT_GE(y, c.j * dy - 1e-12);
        EXPECT_LT(y, (c.j + 1) * dy + 1e-12);
    }
}

TEST(AmrMesh, FaceAreasSumToCrossSections) {
    // The total area of x-faces in any column band plus boundary faces
    // equals ncols * height; verified globally here.
    tmsh::AmrMesh m(geom(6, 2));
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kKeepFlag);
    flags[3] = tmsh::kRefineFlag;
    flags[10] = tmsh::kRefineFlag;
    m.adapt(flags);
    double xarea = 0.0;
    for (const auto& f : m.x_faces()) xarea += f.area;
    // 5 interior coarse column boundaries x height 1.0, plus one internal
    // child-column (height dy0 = 1/6) inside each of the two refined
    // cells.
    EXPECT_NEAR(xarea, 5.0 + 2.0 / 6.0, 1e-12);
}

TEST(AmrMesh, ResidentBytesGrowWithRefinement) {
    tmsh::AmrMesh m(geom(8, 2));
    const auto before = m.resident_bytes();
    std::vector<std::int8_t> flags(m.num_cells(), tmsh::kRefineFlag);
    m.adapt(flags);
    EXPECT_GT(m.resident_bytes(), before);
}

// ------------------------------------------------- leaves_in_range

// Brute-force reference: count leaves whose finest-level anchor lies in
// [lo, hi) and check the returned interval is exactly that contiguous
// index range.
namespace {

void check_range(const tmsh::AmrMesh& m, std::uint64_t lo, std::uint64_t hi,
                 int max_level) {
    const auto [first, last] = m.leaves_in_range(lo, hi);
    ASSERT_LE(first, last);
    const auto& cells = m.cells();
    for (std::int32_t c = 0; c < static_cast<std::int32_t>(cells.size());
         ++c) {
        const auto key =
            tmsh::morton_anchor(cells[static_cast<std::size_t>(c)],
                                max_level);
        EXPECT_EQ(key, m.leaf_key(c));
        const bool inside = key >= lo && key < hi;
        EXPECT_EQ(inside, c >= first && c < last)
            << "leaf " << c << " key " << key << " range [" << lo << ", "
            << hi << ")";
    }
}

}  // namespace

// On an adapted mesh, every aligned and unaligned query interval must
// come back as exactly the contiguous slice of leaves whose anchors fall
// inside it — including intervals that start or end in the middle of a
// coarse leaf's Morton extent (the leaf is excluded: anchors, not
// overlap, define membership).
TEST(AmrMesh, LeavesInRangeMatchesBruteForce) {
    const int max_level = 3;
    tmsh::AmrMesh m(geom(6, max_level));
    std::uint64_t state = 4242;
    for (int round = 0; round < 3; ++round)
        (void)m.adapt(random_flags(m.num_cells(), state));

    const auto n = static_cast<std::int32_t>(m.num_cells());
    const std::uint64_t last_key = m.leaf_key(n - 1);

    // Aligned tile ranges (the block builder's query shape): one finest-
    // level 8x8-at-level-l quadrant is a contiguous code interval of
    // length (8 << (max_level - l))^2 in anchor space.
    for (std::int32_t l = 0; l <= max_level; ++l) {
        const std::uint64_t span =
            static_cast<std::uint64_t>(8u << (max_level - l)) *
            static_cast<std::uint64_t>(8u << (max_level - l));
        for (std::uint64_t lo = 0; lo <= last_key; lo += span)
            check_range(m, lo, lo + span, max_level);
    }

    // Unaligned edges and empty intervals.
    check_range(m, 1, 2, max_level);
    check_range(m, 3, 17, max_level);
    check_range(m, last_key, last_key + 1, max_level);
    check_range(m, last_key + 1, last_key + 100, max_level);  // empty
    check_range(m, 5, 5, max_level);                          // empty
    check_range(m, 0, ~std::uint64_t{0}, max_level);          // everything
}

// Max-level keys: on a fully refined mesh the anchors are dense, so every
// unit interval holds exactly one leaf and the interval arithmetic has no
// slack to hide in.
TEST(AmrMesh, LeavesInRangeOnFullyRefinedMesh) {
    const int max_level = 2;
    tmsh::AmrMesh m(geom(2, max_level));
    for (int l = 0; l < max_level; ++l) {
        std::vector<std::int8_t> flags(m.num_cells(), tmsh::kRefineFlag);
        (void)m.adapt(flags);
    }
    const auto n = static_cast<std::int32_t>(m.num_cells());
    ASSERT_EQ(n, 8 * 8);
    for (std::int32_t c = 0; c < n; ++c) {
        EXPECT_EQ(m.leaf_key(c), static_cast<std::uint64_t>(c));
        const auto [first, last] = m.leaves_in_range(
            static_cast<std::uint64_t>(c), static_cast<std::uint64_t>(c) + 1);
        EXPECT_EQ(first, c);
        EXPECT_EQ(last, c + 1);
    }
}
