// Tests for the shadow-divergence profiler (obs/numerics.hpp): the
// DivergenceStats accumulator, the relative-error histogram bucketing,
// the kernel filter / stride knobs, the registry merge semantics, the
// {"type":"numerics"} record schema, and the end-to-end invariant the
// whole design hangs on: a full-precision solver whose shadow reference
// replicates the production operation order reports ZERO drift on every
// instrumented kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "fp/half.hpp"
#include "fp/ulp.hpp"
#include "obs/json.hpp"
#include "obs/numerics.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"

namespace obs = tp::obs;
namespace fp = tp::fp;
namespace json = tp::obs::json;

namespace {

// RAII: every test leaves the process-global profiler state as it found
// it (off, stride 16, empty filter, empty registry).
struct ShadowSandbox {
    ShadowSandbox() { reset(); }
    ~ShadowSandbox() { reset(); }
    static void reset() {
        obs::set_shadow_profile(false);
        obs::set_shadow_sample_stride(16);
        obs::set_shadow_kernel_filter("");
        obs::shadow_reset();
    }
};

// ------------------------------------------------------------ fp helpers

TEST(UlpRef, ReferenceIsRoundedToTestPrecisionFirst) {
    // 1 + 2^-30 is not representable in float; it rounds to 1.0f, so a
    // float result of exactly 1.0f has zero drift against it.
    EXPECT_EQ(fp::ulp_distance_vs_ref(1.0f, 1.0 + std::ldexp(1.0, -30)),
              0u);
    // One float ULP off the rounded reference is one ULP of drift.
    EXPECT_EQ(fp::ulp_distance_vs_ref(std::nextafterf(1.0f, 2.0f), 1.0),
              1u);
    // In double the same perturbation is far from 1.0.
    EXPECT_GT(fp::ulp_distance_vs_ref(1.0 + std::ldexp(1.0, -30), 1.0),
              1000u);
}

TEST(RelativeError, ScalesByReferenceMagnitude) {
    EXPECT_NEAR(fp::relative_error(1.1, 1.0), 0.1, 1e-15);
    EXPECT_DOUBLE_EQ(fp::relative_error(0.0, 0.0), 0.0);
    EXPECT_TRUE(std::isinf(fp::relative_error(1.0, 0.0)));
    EXPECT_TRUE(std::isinf(
        fp::relative_error(std::nan(""), 1.0)));
}

TEST(RelHist, BucketsByDecadeWithSaturation) {
    EXPECT_EQ(fp::rel_error_bucket(0.0), 0);
    EXPECT_EQ(fp::rel_error_bucket(1e-17), 0);  // below the low edge
    EXPECT_EQ(fp::rel_error_bucket(5e-16), 1);  // [1e-16, 1e-15)
    EXPECT_EQ(fp::rel_error_bucket(5e-8), 9);   // [1e-8, 1e-7)
    EXPECT_EQ(fp::rel_error_bucket(1.0), fp::kRelHistBuckets - 1);
    EXPECT_EQ(fp::rel_error_bucket(std::numeric_limits<double>::infinity()),
              fp::kRelHistBuckets - 1);
    EXPECT_EQ(fp::rel_error_bucket(std::nan("")), fp::kRelHistBuckets - 1);
}

// ------------------------------------------------------ DivergenceStats

TEST(DivergenceStats, ExactSampleLeavesNoError) {
    obs::DivergenceStats s;
    s.observe(2.0f, 2.0);
    EXPECT_EQ(s.samples, 1u);
    EXPECT_EQ(s.exact, 1u);
    EXPECT_EQ(s.max_ulp, 0u);
    EXPECT_EQ(s.max_rel, 0.0);
    EXPECT_EQ(s.sum_abs_err, 0.0);
    EXPECT_EQ(s.rel_hist[0], 1u);
}

TEST(DivergenceStats, DriftedSampleIsMeasuredInOutputPrecision) {
    obs::DivergenceStats s;
    const float test = std::nextafterf(1.0f, 2.0f);
    s.observe(test, 1.0);
    EXPECT_EQ(s.exact, 0u);
    EXPECT_EQ(s.max_ulp, 1u);
    EXPECT_NEAR(s.max_rel, static_cast<double>(test) - 1.0, 1e-12);
    EXPECT_GT(s.sum_abs_err, 0.0);
    EXPECT_EQ(s.max_abs_ref, 1.0);
}

TEST(DivergenceStats, ZeroReferenceCountsAsInfiniteRelative) {
    obs::DivergenceStats s;
    s.observe(1.0f, 0.0);
    EXPECT_TRUE(std::isinf(s.max_rel));
    EXPECT_EQ(s.sum_rel, 0.0);  // non-finite rel excluded from the mean
    EXPECT_EQ(s.rel_hist[fp::kRelHistBuckets - 1], 1u);
}

TEST(DivergenceStats, MergeAccumulatesEveryField) {
    obs::DivergenceStats a, b;
    a.observe(1.0f, 1.0);
    b.observe(std::nextafterf(1.0f, 2.0f), 1.0);
    b.observe(4.0f, 4.0);
    a.merge(b);
    EXPECT_EQ(a.samples, 3u);
    EXPECT_EQ(a.exact, 2u);
    EXPECT_EQ(a.max_ulp, 1u);
    EXPECT_EQ(a.max_abs_ref, 4.0);
    EXPECT_EQ(a.rel_hist[0], 2u);  // the two exact samples
    std::uint64_t total = 0;
    for (const auto count : a.rel_hist) total += count;
    EXPECT_EQ(total, 3u);
}

TEST(DivergenceStats, HalfValuesMeasureOnFloatLattice) {
    obs::DivergenceStats s;
    // Half(0.1) and the reference rounded to Half agree exactly.
    s.observe(fp::Half(0.1), 0.1);
    EXPECT_EQ(s.exact, 1u);
    // A genuinely different half drifts.
    s.observe(fp::Half(0.125), 0.1);
    EXPECT_EQ(s.exact, 1u);
    EXPECT_GT(s.max_ulp, 0u);
}

// ------------------------------------------------------- profiler knobs

TEST(ShadowKnobs, StrideClampsToOne) {
    ShadowSandbox sandbox;
    obs::set_shadow_sample_stride(0);
    EXPECT_EQ(obs::shadow_sample_stride(), 1u);
    obs::set_shadow_sample_stride(64);
    EXPECT_EQ(obs::shadow_sample_stride(), 64u);
}

TEST(ShadowKnobs, KernelFilterSelectsAndTrims) {
    ShadowSandbox sandbox;
    obs::set_shadow_kernel_filter(" clamr.cfl , sem.rhs ");
    EXPECT_TRUE(obs::shadow_kernel_enabled("clamr.cfl"));
    EXPECT_TRUE(obs::shadow_kernel_enabled("sem.rhs"));
    EXPECT_FALSE(obs::shadow_kernel_enabled("clamr.flux_sweep"));
    obs::set_shadow_kernel_filter("");
    EXPECT_TRUE(obs::shadow_kernel_enabled("clamr.flux_sweep"));
}

TEST(ShadowKnobs, ActiveNeedsBothEnableAndFilter) {
    ShadowSandbox sandbox;
    EXPECT_FALSE(obs::shadow_kernel_active("clamr.cfl"));
    obs::set_shadow_profile(true);
    EXPECT_TRUE(obs::shadow_kernel_active("clamr.cfl"));
    obs::set_shadow_kernel_filter("sem.rhs");
    EXPECT_FALSE(obs::shadow_kernel_active("clamr.cfl"));
}

TEST(ShadowRegistry, MergesUnderKernelAndArray) {
    ShadowSandbox sandbox;
    obs::DivergenceStats s;
    s.observe(1.0f, 1.0);
    obs::shadow_merge("k1", "a", s);
    obs::shadow_merge("k1", "a", s);
    obs::shadow_merge("k1", "b", s);
    obs::shadow_merge("k2", "a", s);
    const auto report = obs::shadow_report();
    ASSERT_EQ(report.size(), 2u);
    EXPECT_EQ(report.at("k1").at("a").samples, 2u);
    EXPECT_EQ(report.at("k1").at("b").samples, 1u);
    EXPECT_EQ(report.at("k2").at("a").samples, 1u);
    obs::shadow_reset();
    EXPECT_TRUE(obs::shadow_report().empty());
}

TEST(ShadowRegistry, EmptyAccumulatorIsNotRecorded) {
    ShadowSandbox sandbox;
    obs::shadow_merge("k", "a", obs::DivergenceStats{});
    EXPECT_TRUE(obs::shadow_report().empty());
}

// ------------------------------------------------------- record schema

TEST(NumericsRecord, RoundTripsThroughTheDomParser) {
    obs::DivergenceStats s;
    s.observe(std::nextafterf(1.0f, 2.0f), 1.0);
    s.observe(2.0f, 2.0);
    const std::string rec =
        obs::numerics_record_json("clamr.flux_sweep", "dh", s);
    ASSERT_TRUE(json::valid(rec)) << rec;
    const auto v = json::parse(rec);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->string_or("type", ""), "numerics");
    EXPECT_EQ(v->string_or("kernel", ""), "clamr.flux_sweep");
    EXPECT_EQ(v->string_or("array", ""), "dh");
    EXPECT_EQ(v->number_or("samples", -1), 2.0);
    EXPECT_EQ(v->number_or("exact", -1), 1.0);
    EXPECT_EQ(v->number_or("max_ulp", -1), 1.0);
    const json::Value* hist = v->find("rel_hist");
    ASSERT_NE(hist, nullptr);
    ASSERT_TRUE(hist->is_array());
    ASSERT_EQ(hist->items().size(),
              static_cast<std::size_t>(fp::kRelHistBuckets));
    double total = 0.0;
    for (const auto& bucket : hist->items()) total += bucket.as_number();
    EXPECT_EQ(total, 2.0);
}

TEST(NumericsRecord, InfiniteMaxRelBecomesNull) {
    obs::DivergenceStats s;
    s.observe(1.0f, 0.0);  // rel = inf
    const std::string rec = obs::numerics_record_json("k", "a", s);
    ASSERT_TRUE(json::valid(rec)) << rec;
    EXPECT_NE(rec.find("\"max_rel\":null"), std::string::npos) << rec;
}

// ------------------------------------- end-to-end: solver zero-drift law

TEST(ShadowSolver, FullPrecisionShallowRunIsBitExact) {
    ShadowSandbox sandbox;
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(4);
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 2};
    tp::shallow::ShallowWaterSolver<tp::fp::FullPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(8);
    const auto report = obs::shadow_report();
    for (const char* kernel :
         {"clamr.cfl", "clamr.flux_sweep", "clamr.apply_update"})
        ASSERT_EQ(report.count(kernel), 1u) << kernel;
    for (const auto& [kernel, arrays] : report)
        for (const auto& [array, s] : arrays) {
            EXPECT_GT(s.samples, 0u) << kernel << "/" << array;
            EXPECT_EQ(s.exact, s.samples) << kernel << "/" << array;
            EXPECT_EQ(s.max_ulp, 0u) << kernel << "/" << array;
        }
}

TEST(ShadowSolver, FullPrecisionSemRunIsBitExact) {
    ShadowSandbox sandbox;
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(4);
    tp::sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 3;
    tp::sem::SpectralEulerSolver<tp::fp::FullPrecision> solver(cfg);
    solver.initialize_thermal_bubble({});
    solver.run(3);
    const auto report = obs::shadow_report();
    for (const char* kernel :
         {"sem.cfl", "sem.rhs", "sem.rk_stage", "sem.filter"})
        ASSERT_EQ(report.count(kernel), 1u) << kernel;
    for (const auto& [kernel, arrays] : report)
        for (const auto& [array, s] : arrays) {
            EXPECT_GT(s.samples, 0u) << kernel << "/" << array;
            EXPECT_EQ(s.exact, s.samples) << kernel << "/" << array;
            EXPECT_EQ(s.max_ulp, 0u) << kernel << "/" << array;
        }
}

TEST(ShadowSolver, ReducedPrecisionShallowRunShowsDrift) {
    ShadowSandbox sandbox;
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(2);
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::MinimumPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(8);
    const auto report = obs::shadow_report();
    // Single-precision flux sums against a double reference must drift
    // somewhere — if they never do, the shadow is comparing a value to
    // itself and the telemetry is vacuous.
    std::uint64_t total_inexact = 0;
    for (const auto& [kernel, arrays] : report)
        for (const auto& [array, s] : arrays)
            total_inexact += s.samples - s.exact;
    EXPECT_GT(total_inexact, 0u);
}

TEST(ShadowSolver, KernelFilterLimitsInstrumentation) {
    ShadowSandbox sandbox;
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(4);
    obs::set_shadow_kernel_filter("clamr.cfl");
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::FullPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(3);
    const auto report = obs::shadow_report();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report.count("clamr.cfl"), 1u);
}

}  // namespace
