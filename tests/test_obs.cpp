// Tests for the flight-recorder observability layer (src/obs/): the JSON
// builder/validator, the trace session, the metrics stream + manifest,
// the numerical-health probes, and the two contracts the solvers rely on:
// instrumentation is allocation-free when the flags are off, and an
// injected NaN is caught and reported as a structured NumericalFault.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "shallow/solver.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace obs = tp::obs;
namespace json = tp::obs::json;

// ------------------------------------------------- allocation bookkeeping

// Count every heap allocation in the test binary so the zero-cost-when-off
// contract is testable: N instrumentation points with tracing/probing off
// must perform zero allocations (and, per ScopedSpan's design, no clock
// reads — not observable here, but the allocation half is).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::vector<std::string> lines_of(const std::string& path) {
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
}

std::string temp_path(const char* stem) {
    return std::string(::testing::TempDir()) + stem;
}

// Pull one numeric field out of a single-line JSON object written by the
// emitters (keys are unique per event line, no inner whitespace).
double field_of(const std::string& line, const std::string& key) {
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " in " << line;
    return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
}

// --------------------------------------------------------------- builder

TEST(Json, EscapesControlAndQuoteCharacters) {
    std::string out;
    json::append_escaped(out, "a\"b\\c\nd\te\x01" "f");
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    EXPECT_TRUE(json::valid(out));
}

TEST(Json, NonFiniteNumbersBecomeNull) {
    std::string out;
    json::append_number(out, std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(out, "null");
    out.clear();
    json::append_number(out, std::numeric_limits<double>::infinity());
    EXPECT_EQ(out, "null");

    const std::string doc = json::Object()
                                .field("dt", std::nan(""))
                                .field("ok", 1.5)
                                .str();
    EXPECT_EQ(doc, "{\"dt\":null,\"ok\":1.5}");
    EXPECT_TRUE(json::valid(doc));
}

TEST(Json, ObjectBuilderOutputIsValid) {
    const std::string doc = json::Object()
                                .field("type", "step")
                                .field("step", std::int64_t{7})
                                .field("cells", std::uint64_t{1768})
                                .field("enabled", true)
                                .field("mass", 1.25e-3)
                                .field_raw("phases", "{\"cfl\":0.5}")
                                .str();
    EXPECT_TRUE(json::valid(doc));
    EXPECT_NE(doc.find("\"cells\":1768"), std::string::npos);
    EXPECT_NE(doc.find("\"phases\":{\"cfl\":0.5}"), std::string::npos);
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
    EXPECT_TRUE(json::valid("{}"));
    EXPECT_TRUE(json::valid("[1, 2.5, -3e-2, \"x\", null, true]"));
    EXPECT_TRUE(json::valid("{\"a\":{\"b\":[{}]}}"));
    EXPECT_FALSE(json::valid(""));
    EXPECT_FALSE(json::valid("{"));
    EXPECT_FALSE(json::valid("{\"a\":1,}"));
    EXPECT_FALSE(json::valid("{\"a\":NaN}"));
    EXPECT_FALSE(json::valid("{\"a\":1} trailing"));
    EXPECT_FALSE(json::valid("{'a':1}"));
    EXPECT_FALSE(json::valid("{\"a\":01}"));
}

// ----------------------------------------------------------------- trace

TEST(Trace, SpansAreDroppedWhenOff) {
    ASSERT_FALSE(obs::trace_enabled());
    {
        TP_OBS_SPAN("off.outer");
        TP_OBS_SPAN("off.inner");
    }
    EXPECT_EQ(obs::trace_event_count(), 0u);
    EXPECT_EQ(obs::trace_stop(), 0u);  // no session: no-op
}

TEST(Trace, WritesValidChromeTraceWithNestedSpans) {
    const std::string path = temp_path("nested.trace.json");
    obs::trace_start(path);
    {
        TP_OBS_SPAN("outer");
        { TP_OBS_SPAN("inner"); }
    }
    EXPECT_EQ(obs::trace_event_count(), 2u);
    EXPECT_EQ(obs::trace_stop(), 2u);

    const std::string doc = slurp(path);
    ASSERT_TRUE(json::valid(doc)) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);

    // Events are one per line; the inner span completes (and is appended)
    // first. The outer interval must contain the inner one.
    std::string inner_line, outer_line;
    for (const auto& line : lines_of(path)) {
        if (line.find("\"inner\"") != std::string::npos) inner_line = line;
        if (line.find("\"outer\"") != std::string::npos) outer_line = line;
    }
    ASSERT_FALSE(inner_line.empty());
    ASSERT_FALSE(outer_line.empty());
    const double outer_ts = field_of(outer_line, "ts");
    const double outer_end = outer_ts + field_of(outer_line, "dur");
    const double inner_ts = field_of(inner_line, "ts");
    const double inner_end = inner_ts + field_of(inner_line, "dur");
    EXPECT_LE(outer_ts, inner_ts);
    EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, RestartDiscardsPriorSession) {
    const std::string a = temp_path("a.trace.json");
    const std::string b = temp_path("b.trace.json");
    obs::trace_start(a);
    { TP_OBS_SPAN("first"); }
    obs::trace_start(b);  // restart without stop
    { TP_OBS_SPAN("second"); }
    EXPECT_EQ(obs::trace_stop(), 1u);
    EXPECT_EQ(slurp(b).find("\"first\""), std::string::npos);
}

TEST(Trace, StartRejectsUnwritablePath) {
    EXPECT_THROW(obs::trace_start("/nonexistent-dir/x/y.trace.json"),
                 std::runtime_error);
    EXPECT_FALSE(obs::trace_enabled());
}

// --------------------------------------------------------------- metrics

TEST(Metrics, ManifestIsFirstAndCarriesBuildFields) {
    const std::string path = temp_path("run.metrics.jsonl");
    obs::metrics().open(path);
    obs::write_manifest("test_obs", {{"precision", "mixed"}});
    obs::metrics().write_line(
        json::Object().field("type", "step").field("dt", 0.5).str());
    EXPECT_EQ(obs::metrics().lines_written(), 2u);
    obs::metrics().close();
    EXPECT_FALSE(obs::metrics().is_open());

    const auto lines = lines_of(path);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) EXPECT_TRUE(json::valid(line)) << line;
    for (const char* key :
         {"\"type\":\"manifest\"", "\"program\":\"test_obs\"", "\"git_sha\"",
          "\"build\"", "\"start_time\"", "\"threads\"",
          "\"precision\":\"mixed\""})
        EXPECT_NE(lines[0].find(key), std::string::npos) << key;
    EXPECT_NE(lines[1].find("\"type\":\"step\""), std::string::npos);
}

TEST(Metrics, WritesAreNoOpsWhenClosed) {
    ASSERT_FALSE(obs::metrics().is_open());
    const std::uint64_t before = obs::metrics().lines_written();
    obs::metrics().write_line("{}");          // must not crash
    obs::write_manifest("ignored", {});       // must not crash
    EXPECT_EQ(obs::metrics().lines_written(), before);
}

TEST(Metrics, TimerDeltaJsonReportsPerStepIncrements) {
    tp::util::StopwatchRegistry timers;
    std::map<std::string, double> previous;
    timers.add("cfl", 0.5);
    timers.add("flux", 1.0);
    EXPECT_EQ(obs::timer_delta_json(timers, previous),
              "{\"cfl\":0.5,\"flux\":1}");
    timers.add("cfl", 0.25);
    EXPECT_EQ(obs::timer_delta_json(timers, previous),
              "{\"cfl\":0.25,\"flux\":0}");
}

TEST(Table, JsonExportMatchesRows) {
    tp::util::TextTable t("Table X: demo");
    t.set_header({"col a", "col b"});
    t.add_row({"1", "2.5"});
    t.add_row({"x \"quoted\"", ""});
    const std::string doc = t.json_str();
    EXPECT_TRUE(json::valid(doc)) << doc;
    EXPECT_EQ(doc,
              "{\"type\":\"table\",\"title\":\"Table X: demo\","
              "\"header\":[\"col a\",\"col b\"],"
              "\"rows\":[[\"1\",\"2.5\"],[\"x \\\"quoted\\\"\",\"\"]]}");
}

// ---------------------------------------------------------------- probes

TEST(Probe, DetectsNanAndInfWithFirstBadIndex) {
    obs::probe_reset();
    std::vector<float> data{1.0f, 2.0f, std::nanf(""), 4.0f,
                            std::numeric_limits<float>::infinity()};
    const obs::ProbeStats s =
        obs::probe_array("unit.h", data.data(), data.size());
    EXPECT_EQ(s.samples, 5u);
    EXPECT_EQ(s.nan_count, 1u);
    EXPECT_EQ(s.inf_count, 1u);
    EXPECT_EQ(s.first_bad_index, 2);
    EXPECT_FALSE(s.healthy());
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 4.0);

    // The registry accumulates across calls under the same kernel name.
    obs::probe_array("unit.h", data.data(), 2);
    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("unit.h"), 1u);
    EXPECT_EQ(report.at("unit.h").samples, 7u);
    EXPECT_EQ(report.at("unit.h").nan_count, 1u);
    obs::probe_reset();
    EXPECT_TRUE(obs::probe_report().empty());
}

TEST(Probe, UlpDriftAgainstShadowReference) {
    obs::probe_reset();
    std::vector<float> test{1.0f, 2.0f, 3.0f};
    std::vector<float> ref{1.0f, std::nextafterf(2.0f, 3.0f), 3.0f};
    const obs::ProbeStats s =
        obs::probe_ulp_drift("unit.ulp", test.data(), ref.data(), 3);
    EXPECT_EQ(s.max_ulp_drift, 1u);
    EXPECT_TRUE(s.healthy());
    obs::probe_reset();
}

TEST(Probe, RaiseWritesDiagnosticRecordBeforeThrowing) {
    const std::string path = temp_path("fault.metrics.jsonl");
    obs::metrics().open(path);
    try {
        obs::raise_numerical_fault("unit.cfl", 42, "dt is NaN");
        FAIL() << "raise_numerical_fault must throw";
    } catch (const obs::NumericalFault& fault) {
        EXPECT_EQ(fault.kernel(), "unit.cfl");
        EXPECT_EQ(fault.step(), 42);
        EXPECT_NE(std::string(fault.what()).find("dt is NaN"),
                  std::string::npos);
    }
    obs::metrics().close();
    const auto lines = lines_of(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(json::valid(lines[0]));
    for (const char* key :
         {"\"type\":\"diagnostic\"", "\"severity\":\"fatal\"",
          "\"kernel\":\"unit.cfl\"", "\"step\":42"})
        EXPECT_NE(lines[0].find(key), std::string::npos) << key;
}

// --------------------------------------------- solver-level NaN injection

TEST(Probe, CatchesInjectedNanInShallowSolver) {
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    tp::shallow::DamBreak ic;
    ic.h_inside = std::numeric_limits<double>::quiet_NaN();
    solver.initialize_dam_break(ic);

    obs::probe_reset();
    obs::set_probe_enabled(true);
    EXPECT_THROW(solver.step(), obs::NumericalFault);
    obs::set_probe_enabled(false);

    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("clamr.h"), 1u);
    EXPECT_GT(report.at("clamr.h").nan_count, 0u);
    obs::probe_reset();
}

TEST(Probe, HealthySolverStepRaisesNothing) {
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    solver.initialize_dam_break({});
    obs::probe_reset();
    obs::set_probe_enabled(true);
    EXPECT_NO_THROW(solver.run(3));
    obs::set_probe_enabled(false);
    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("clamr.h"), 1u);
    EXPECT_TRUE(report.at("clamr.h").healthy());
    obs::probe_reset();
}

// --------------------------------------------------- zero-cost when off

TEST(ZeroCost, InstrumentationPointsDoNotAllocateWhenOff) {
    ASSERT_FALSE(obs::trace_enabled());
    ASSERT_FALSE(obs::probe_enabled());
    const std::uint64_t before = g_allocs.load();
    for (int i = 0; i < 10000; ++i) {
        TP_OBS_SPAN("zero.cost");
        if (obs::probe_enabled()) ADD_FAILURE() << "probe must be off";
    }
    EXPECT_EQ(g_allocs.load() - before, 0u);
}

TEST(ZeroCost, SolverStepsAllocationFreeWithObsOffAfterWarmup) {
    // Reuses the arena-warmup idea from test_simd: after a few steps every
    // scratch buffer has reached steady state, so further steps with the
    // observability flags off must not touch the heap at all. Rezone is
    // disabled — AMR adapts legitimately allocate.
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    cfg.rezone_interval = 0;
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(5);  // warmup
    const std::uint64_t before = g_allocs.load();
    solver.run(5);
    EXPECT_EQ(g_allocs.load() - before, 0u);
}

}  // namespace
