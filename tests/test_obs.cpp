// Tests for the flight-recorder observability layer (src/obs/): the JSON
// builder/validator, the trace session, the metrics stream + manifest,
// the numerical-health probes, and the two contracts the solvers rely on:
// instrumentation is allocation-free when the flags are off, and an
// injected NaN is caught and reported as a structured NumericalFault.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/numerics.hpp"
#include "obs/obs.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "shallow/solver.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace obs = tp::obs;
namespace json = tp::obs::json;

// ------------------------------------------------- allocation bookkeeping

// Count every heap allocation in the test binary so the zero-cost-when-off
// contract is testable: N instrumentation points with tracing/probing off
// must perform zero allocations (and, per ScopedSpan's design, no clock
// reads — not observable here, but the allocation half is).
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

std::string slurp(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

std::vector<std::string> lines_of(const std::string& path) {
    std::ifstream is(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) lines.push_back(line);
    return lines;
}

std::string temp_path(const char* stem) {
    return std::string(::testing::TempDir()) + stem;
}

// Pull one numeric field out of a single-line JSON object written by the
// emitters (keys are unique per event line, no inner whitespace).
double field_of(const std::string& line, const std::string& key) {
    const auto pos = line.find("\"" + key + "\":");
    EXPECT_NE(pos, std::string::npos) << key << " in " << line;
    return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
}

// --------------------------------------------------------------- builder

TEST(Json, EscapesControlAndQuoteCharacters) {
    std::string out;
    json::append_escaped(out, "a\"b\\c\nd\te\x01" "f");
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    EXPECT_TRUE(json::valid(out));
}

TEST(Json, NonFiniteNumbersBecomeNull) {
    std::string out;
    json::append_number(out, std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(out, "null");
    out.clear();
    json::append_number(out, std::numeric_limits<double>::infinity());
    EXPECT_EQ(out, "null");

    const std::string doc = json::Object()
                                .field("dt", std::nan(""))
                                .field("ok", 1.5)
                                .str();
    EXPECT_EQ(doc, "{\"dt\":null,\"ok\":1.5}");
    EXPECT_TRUE(json::valid(doc));
}

TEST(Json, ObjectBuilderOutputIsValid) {
    const std::string doc = json::Object()
                                .field("type", "step")
                                .field("step", std::int64_t{7})
                                .field("cells", std::uint64_t{1768})
                                .field("enabled", true)
                                .field("mass", 1.25e-3)
                                .field_raw("phases", "{\"cfl\":0.5}")
                                .str();
    EXPECT_TRUE(json::valid(doc));
    EXPECT_NE(doc.find("\"cells\":1768"), std::string::npos);
    EXPECT_NE(doc.find("\"phases\":{\"cfl\":0.5}"), std::string::npos);
}

TEST(Json, WellFormedUtf8PassesThroughVerbatim) {
    std::string out;
    json::append_escaped(out, "h\xC3\xA9llo \xE6\x97\xA5\xE6\x9C\xAC");
    EXPECT_EQ(out, "\"h\xC3\xA9llo \xE6\x97\xA5\xE6\x9C\xAC\"");
    EXPECT_TRUE(json::valid(out));
}

TEST(Json, InvalidBytesEscapeAsLatin1) {
    // A lone 0xFF (not valid UTF-8 anywhere) must not leak into the
    // document raw; it re-interprets as Latin-1 U+00FF.
    std::string out;
    json::append_escaped(out, "a\xFF" "b");
    EXPECT_EQ(out, "\"a\\u00ffb\"");
    // Truncated multi-byte sequence at end of string: same treatment.
    out.clear();
    json::append_escaped(out, "x\xC3");
    EXPECT_EQ(out, "\"x\\u00c3\"");
}

TEST(Json, EveryByteValueEscapesToAParseableDocument) {
    // Fuzz-ish sweep: singleton bytes and adversarial multi-byte soups
    // must always produce strictly valid, parseable JSON.
    for (int b = 0; b < 256; ++b) {
        std::string s = "x";
        s.push_back(static_cast<char>(b));
        s += "y";
        std::string out;
        json::append_escaped(out, s);
        EXPECT_TRUE(json::valid(out)) << "byte " << b;
        EXPECT_TRUE(json::parse(out).has_value()) << "byte " << b;
    }
    std::uint32_t lcg = 12345;
    for (int trial = 0; trial < 64; ++trial) {
        std::string s;
        for (int i = 0; i < 48; ++i) {
            lcg = lcg * 1664525u + 1013904223u;
            s.push_back(static_cast<char>(lcg >> 24));
        }
        std::string out;
        json::append_escaped(out, s);
        EXPECT_TRUE(json::valid(out)) << "trial " << trial;
        EXPECT_TRUE(json::parse(out).has_value()) << "trial " << trial;
    }
}

TEST(JsonDom, ParsesObjectsArraysAndEscapes) {
    const auto v = json::parse(
        "{\"a\":1.5,\"b\":[true,null,\"x\"],\"c\":{\"d\":-2e3}}");
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(v->number_or("a", 0.0), 1.5);
    const json::Value* b = v->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->items().size(), 3u);
    EXPECT_TRUE(b->items()[0].as_bool());
    EXPECT_TRUE(b->items()[1].is_null());
    EXPECT_EQ(b->items()[2].as_string(), "x");
    ASSERT_NE(v->find("c"), nullptr);
    EXPECT_DOUBLE_EQ(v->find("c")->number_or("d", 0.0), -2000.0);
    EXPECT_FALSE(json::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(json::parse("[1] junk").has_value());
}

TEST(JsonDom, DecodesUnicodeEscapesAndSurrogatePairs) {
    const auto v =
        json::parse("{\"s\":\"a\\u00e9\\ud83d\\ude00\\n\"}");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->string_or("s", ""),
              "a\xC3\xA9\xF0\x9F\x98\x80\n");
    EXPECT_FALSE(json::parse("{\"s\":\"\\ud83d\"}").has_value());
    EXPECT_FALSE(json::parse("{\"s\":\"\\ude00\"}").has_value());
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
    EXPECT_TRUE(json::valid("{}"));
    EXPECT_TRUE(json::valid("[1, 2.5, -3e-2, \"x\", null, true]"));
    EXPECT_TRUE(json::valid("{\"a\":{\"b\":[{}]}}"));
    EXPECT_FALSE(json::valid(""));
    EXPECT_FALSE(json::valid("{"));
    EXPECT_FALSE(json::valid("{\"a\":1,}"));
    EXPECT_FALSE(json::valid("{\"a\":NaN}"));
    EXPECT_FALSE(json::valid("{\"a\":1} trailing"));
    EXPECT_FALSE(json::valid("{'a':1}"));
    EXPECT_FALSE(json::valid("{\"a\":01}"));
}

// ----------------------------------------------------------------- trace

TEST(Trace, SpansAreDroppedWhenOff) {
    ASSERT_FALSE(obs::trace_enabled());
    {
        TP_OBS_SPAN("off.outer");
        TP_OBS_SPAN("off.inner");
    }
    EXPECT_EQ(obs::trace_event_count(), 0u);
    EXPECT_EQ(obs::trace_stop(), 0u);  // no session: no-op
}

TEST(Trace, WritesValidChromeTraceWithNestedSpans) {
    const std::string path = temp_path("nested.trace.json");
    obs::trace_start(path);
    {
        TP_OBS_SPAN("outer");
        { TP_OBS_SPAN("inner"); }
    }
    EXPECT_EQ(obs::trace_event_count(), 2u);
    EXPECT_EQ(obs::trace_stop(), 2u);

    const std::string doc = slurp(path);
    ASSERT_TRUE(json::valid(doc)) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);

    // Events are one per line; the inner span completes (and is appended)
    // first. The outer interval must contain the inner one.
    std::string inner_line, outer_line;
    for (const auto& line : lines_of(path)) {
        if (line.find("\"inner\"") != std::string::npos) inner_line = line;
        if (line.find("\"outer\"") != std::string::npos) outer_line = line;
    }
    ASSERT_FALSE(inner_line.empty());
    ASSERT_FALSE(outer_line.empty());
    const double outer_ts = field_of(outer_line, "ts");
    const double outer_end = outer_ts + field_of(outer_line, "dur");
    const double inner_ts = field_of(inner_line, "ts");
    const double inner_end = inner_ts + field_of(inner_line, "dur");
    EXPECT_LE(outer_ts, inner_ts);
    EXPECT_LE(inner_end, outer_end);
}

TEST(Trace, RestartDiscardsPriorSession) {
    const std::string a = temp_path("a.trace.json");
    const std::string b = temp_path("b.trace.json");
    obs::trace_start(a);
    { TP_OBS_SPAN("first"); }
    obs::trace_start(b);  // restart without stop
    { TP_OBS_SPAN("second"); }
    EXPECT_EQ(obs::trace_stop(), 1u);
    EXPECT_EQ(slurp(b).find("\"first\""), std::string::npos);
}

TEST(Trace, StartRejectsUnwritablePath) {
    EXPECT_THROW(obs::trace_start("/nonexistent-dir/x/y.trace.json"),
                 std::runtime_error);
    EXPECT_FALSE(obs::trace_enabled());
}

TEST(Trace, RankSpansLandOnVirtualRankTracks) {
    const std::string path = temp_path("rank.trace.json");
    obs::trace_start(path);
    { TP_OBS_SPAN_RANK("dist.rank.interior", 3); }
    { TP_OBS_SPAN("host.phase"); }
    EXPECT_EQ(obs::trace_stop(), 2u);

    const std::string doc = slurp(path);
    ASSERT_TRUE(json::valid(doc)) << doc;
    // The rank span sits on pid 2 / tid 3 under named track metadata;
    // the plain span stays on the host-thread process (pid 1).
    std::string rank_line, host_line;
    bool named_track = false;
    for (const auto& line : lines_of(path)) {
        if (line.find("\"dist.rank.interior\"") != std::string::npos)
            rank_line = line;
        if (line.find("\"host.phase\"") != std::string::npos)
            host_line = line;
        if (line.find("\"rank 3\"") != std::string::npos) named_track = true;
    }
    ASSERT_FALSE(rank_line.empty());
    ASSERT_FALSE(host_line.empty());
    EXPECT_TRUE(named_track) << doc;
    EXPECT_EQ(field_of(rank_line, "pid"), 2.0);
    EXPECT_EQ(field_of(rank_line, "tid"), 3.0);
    EXPECT_EQ(field_of(host_line, "pid"), 1.0);
}

TEST(Trace, EdgesFlushAsPairedFlowEvents) {
    const std::string path = temp_path("edge.trace.json");
    obs::trace_start(path);
    obs::trace_edge(/*src=*/0, /*dst=*/2, /*tag=*/7, /*bytes=*/4096,
                    /*post_ns=*/1000, /*deliver_ns=*/5000);
    EXPECT_EQ(obs::trace_event_count(), 2u);  // one edge = s + f
    EXPECT_EQ(obs::trace_stop(), 2u);

    const std::string doc = slurp(path);
    ASSERT_TRUE(json::valid(doc)) << doc;
    std::string s_line, f_line;
    for (const auto& line : lines_of(path)) {
        if (line.find("\"ph\":\"s\"") != std::string::npos) s_line = line;
        if (line.find("\"ph\":\"f\"") != std::string::npos) f_line = line;
    }
    ASSERT_FALSE(s_line.empty()) << doc;
    ASSERT_FALSE(f_line.empty()) << doc;
    // Start on the source rank track at post time, finish on the
    // destination track at deliver time, bound by one shared flow id.
    EXPECT_EQ(field_of(s_line, "tid"), 0.0);
    EXPECT_EQ(field_of(f_line, "tid"), 2.0);
    EXPECT_EQ(field_of(s_line, "id"), field_of(f_line, "id"));
    EXPECT_LT(field_of(s_line, "ts"), field_of(f_line, "ts"));
    EXPECT_NE(f_line.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(s_line.find("\"bytes\":4096"), std::string::npos);
    // Both endpoint ranks got named tracks even without any rank span.
    EXPECT_NE(doc.find("\"rank 0\""), std::string::npos);
    EXPECT_NE(doc.find("\"rank 2\""), std::string::npos);
}

TEST(Trace, BufferCapDropsAndCountsExcessEvents) {
    const std::size_t saved = obs::trace_buffer_cap();
    obs::trace_set_buffer_cap(4);
    const std::string path = temp_path("cap.trace.json");
    obs::trace_start(path);
    EXPECT_EQ(obs::trace_dropped_events(), 0u);  // reset by trace_start
    for (int i = 0; i < 10; ++i) {
        TP_OBS_SPAN("cap.span");
    }
    EXPECT_EQ(obs::trace_event_count(), 4u);
    EXPECT_EQ(obs::trace_stop(), 4u);
    obs::trace_set_buffer_cap(saved);
    // The loss is sticky after stop so drivers can report it, and the
    // trace header carries it for the viewer.
    EXPECT_EQ(obs::trace_dropped_events(), 6u);
    EXPECT_NE(slurp(path).find("\"droppedEvents\":6"), std::string::npos);
}

// --------------------------------------------------------------- metrics

TEST(Metrics, ManifestIsFirstAndCarriesBuildFields) {
    const std::string path = temp_path("run.metrics.jsonl");
    obs::metrics().open(path);
    obs::write_manifest("test_obs", {{"precision", "mixed"}});
    obs::metrics().write_line(
        json::Object().field("type", "step").field("dt", 0.5).str());
    EXPECT_EQ(obs::metrics().lines_written(), 2u);
    obs::metrics().close();
    EXPECT_FALSE(obs::metrics().is_open());

    const auto lines = lines_of(path);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) EXPECT_TRUE(json::valid(line)) << line;
    for (const char* key :
         {"\"type\":\"manifest\"", "\"program\":\"test_obs\"", "\"git_sha\"",
          "\"build\"", "\"start_time\"", "\"threads\"",
          "\"precision\":\"mixed\""})
        EXPECT_NE(lines[0].find(key), std::string::npos) << key;
    EXPECT_NE(lines[1].find("\"type\":\"step\""), std::string::npos);
}

TEST(Metrics, WritesAreNoOpsWhenClosed) {
    ASSERT_FALSE(obs::metrics().is_open());
    const std::uint64_t before = obs::metrics().lines_written();
    obs::metrics().write_line("{}");          // must not crash
    obs::write_manifest("ignored", {});       // must not crash
    EXPECT_EQ(obs::metrics().lines_written(), before);
}

TEST(Metrics, TimerDeltaJsonReportsPerStepIncrements) {
    tp::util::StopwatchRegistry timers;
    std::map<std::string, double> previous;
    timers.add("cfl", 0.5);
    timers.add("flux", 1.0);
    EXPECT_EQ(obs::timer_delta_json(timers, previous),
              "{\"cfl\":0.5,\"flux\":1}");
    timers.add("cfl", 0.25);
    EXPECT_EQ(obs::timer_delta_json(timers, previous),
              "{\"cfl\":0.25,\"flux\":0}");
}

TEST(Table, JsonExportMatchesRows) {
    tp::util::TextTable t("Table X: demo");
    t.set_header({"col a", "col b"});
    t.add_row({"1", "2.5"});
    t.add_row({"x \"quoted\"", ""});
    const std::string doc = t.json_str();
    EXPECT_TRUE(json::valid(doc)) << doc;
    EXPECT_EQ(doc,
              "{\"type\":\"table\",\"title\":\"Table X: demo\","
              "\"header\":[\"col a\",\"col b\"],"
              "\"rows\":[[\"1\",\"2.5\"],[\"x \\\"quoted\\\"\",\"\"]]}");
}

// ---------------------------------------------------------------- probes

TEST(Probe, DetectsNanAndInfWithFirstBadIndex) {
    obs::probe_reset();
    std::vector<float> data{1.0f, 2.0f, std::nanf(""), 4.0f,
                            std::numeric_limits<float>::infinity()};
    const obs::ProbeStats s =
        obs::probe_array("unit.h", data.data(), data.size());
    EXPECT_EQ(s.samples, 5u);
    EXPECT_EQ(s.nan_count, 1u);
    EXPECT_EQ(s.inf_count, 1u);
    EXPECT_EQ(s.first_bad_index, 2);
    EXPECT_FALSE(s.healthy());
    EXPECT_EQ(s.min, 1.0);
    EXPECT_EQ(s.max, 4.0);

    // The registry accumulates across calls under the same kernel name.
    obs::probe_array("unit.h", data.data(), 2);
    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("unit.h"), 1u);
    EXPECT_EQ(report.at("unit.h").samples, 7u);
    EXPECT_EQ(report.at("unit.h").nan_count, 1u);
    obs::probe_reset();
    EXPECT_TRUE(obs::probe_report().empty());
}

TEST(Probe, UlpDriftAgainstShadowReference) {
    obs::probe_reset();
    std::vector<float> test{1.0f, 2.0f, 3.0f};
    std::vector<float> ref{1.0f, std::nextafterf(2.0f, 3.0f), 3.0f};
    const obs::ProbeStats s =
        obs::probe_ulp_drift("unit.ulp", test.data(), ref.data(), 3);
    EXPECT_EQ(s.max_ulp_drift, 1u);
    EXPECT_TRUE(s.healthy());
    obs::probe_reset();
}

TEST(Probe, RaiseWritesDiagnosticRecordBeforeThrowing) {
    const std::string path = temp_path("fault.metrics.jsonl");
    obs::metrics().open(path);
    try {
        obs::raise_numerical_fault("unit.cfl", 42, "dt is NaN");
        FAIL() << "raise_numerical_fault must throw";
    } catch (const obs::NumericalFault& fault) {
        EXPECT_EQ(fault.kernel(), "unit.cfl");
        EXPECT_EQ(fault.step(), 42);
        EXPECT_NE(std::string(fault.what()).find("dt is NaN"),
                  std::string::npos);
    }
    obs::metrics().close();
    const auto lines = lines_of(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(json::valid(lines[0]));
    for (const char* key :
         {"\"type\":\"diagnostic\"", "\"severity\":\"fatal\"",
          "\"kernel\":\"unit.cfl\"", "\"step\":42"})
        EXPECT_NE(lines[0].find(key), std::string::npos) << key;
}

// --------------------------------------------- solver-level NaN injection

TEST(Probe, CatchesInjectedNanInShallowSolver) {
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    tp::shallow::DamBreak ic;
    ic.h_inside = std::numeric_limits<double>::quiet_NaN();
    solver.initialize_dam_break(ic);

    obs::probe_reset();
    obs::set_probe_enabled(true);
    EXPECT_THROW(solver.step(), obs::NumericalFault);
    obs::set_probe_enabled(false);

    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("clamr.h"), 1u);
    EXPECT_GT(report.at("clamr.h").nan_count, 0u);
    obs::probe_reset();
}

TEST(Probe, HealthySolverStepRaisesNothing) {
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    solver.initialize_dam_break({});
    obs::probe_reset();
    obs::set_probe_enabled(true);
    EXPECT_NO_THROW(solver.run(3));
    obs::set_probe_enabled(false);
    const auto report = obs::probe_report();
    ASSERT_EQ(report.count("clamr.h"), 1u);
    EXPECT_TRUE(report.at("clamr.h").healthy());
    obs::probe_reset();
}

// --------------------------------------------------- zero-cost when off

TEST(ZeroCost, InstrumentationPointsDoNotAllocateWhenOff) {
    ASSERT_FALSE(obs::trace_enabled());
    ASSERT_FALSE(obs::probe_enabled());
    const std::uint64_t before = g_allocs.load();
    for (int i = 0; i < 10000; ++i) {
        TP_OBS_SPAN("zero.cost");
        if (obs::probe_enabled()) ADD_FAILURE() << "probe must be off";
    }
    EXPECT_EQ(g_allocs.load() - before, 0u);
}

TEST(ZeroCost, SolverStepsAllocationFreeWithObsOffAfterWarmup) {
    // Reuses the arena-warmup idea from test_simd: after a few steps every
    // scratch buffer has reached steady state, so further steps with the
    // observability flags off must not touch the heap at all. Rezone is
    // disabled — AMR adapts legitimately allocate. Shadow profiling off is
    // part of the contract: each hook must cost one relaxed load, no heap.
    ASSERT_FALSE(obs::shadow_profile_enabled());
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    cfg.rezone_interval = 0;
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(5);  // warmup
    const std::uint64_t before = g_allocs.load();
    solver.run(5);
    EXPECT_EQ(g_allocs.load() - before, 0u);
}

TEST(ZeroCost, ShadowProfilingAllocationFreeAfterWarmup) {
    // With profiling ON the hooks may allocate during warmup (scratch
    // capture vectors, first registry merge per kernel/array pair) but a
    // steady-state step must then run entirely out of those buffers.
    obs::shadow_reset();
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(4);
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    cfg.rezone_interval = 0;
    tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
    solver.initialize_dam_break({});
    solver.run(5);  // warmup: scratch + registry reach steady state
    const std::uint64_t before = g_allocs.load();
    solver.run(5);
    EXPECT_EQ(g_allocs.load() - before, 0u);
    obs::set_shadow_profile(false);
    obs::set_shadow_sample_stride(16);
    obs::shadow_reset();
}

// ------------------------------------------------- crash-flush semantics

TEST(Flush, PoisonedRunKeepsStreamValidAndNumericsFlushed) {
    // Telemetry accumulated before a NumericalFault must land in the
    // stream during unwind-time finish_observability(), and every line of
    // the resulting file must still be strictly valid JSON — the
    // poisoned-run regression the flush contract exists for.
    const std::string path = temp_path("poison.metrics.jsonl");
    obs::metrics().open(path);
    obs::write_manifest("poisoned_run", {{"precision", "mixed"}});
    obs::probe_reset();
    obs::shadow_reset();
    obs::set_shadow_profile(true);
    obs::set_shadow_sample_stride(2);

    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    {  // healthy steps accumulate shadow telemetry
        tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
        solver.initialize_dam_break({});
        solver.run(2);
    }
    {  // then the poisoned run dies mid-step
        tp::shallow::ShallowWaterSolver<tp::fp::MixedPrecision> solver(cfg);
        tp::shallow::DamBreak ic;
        ic.h_inside = std::numeric_limits<double>::quiet_NaN();
        solver.initialize_dam_break(ic);
        obs::set_probe_enabled(true);
        EXPECT_THROW(solver.step(), obs::NumericalFault);
    }
    obs::finish_observability();  // what ObsGuard runs during unwind
    EXPECT_FALSE(obs::metrics().is_open());
    EXPECT_FALSE(obs::shadow_profile_enabled());

    const auto lines = lines_of(path);
    ASSERT_GE(lines.size(), 3u);
    int numerics = 0, diagnostics = 0;
    for (const auto& line : lines) {
        EXPECT_TRUE(json::valid(line)) << line;
        if (line.find("\"type\":\"numerics\"") != std::string::npos)
            ++numerics;
        if (line.find("\"type\":\"diagnostic\"") != std::string::npos)
            ++diagnostics;
    }
    EXPECT_GT(numerics, 0);
    EXPECT_EQ(diagnostics, 1);
    obs::probe_reset();
    obs::set_shadow_sample_stride(16);
}

// Body of the death test below: lives in a free function because the
// brace-initialized argv would otherwise split EXPECT_DEATH's macro args.
[[noreturn]] void run_then_throw_uncaught(const std::string& trace,
                                          const std::string& metrics) {
    tp::util::ArgParser args("death", "terminate-flush probe");
    obs::add_obs_options(args);
    const char* argv[] = {"death", "--trace", trace.c_str(), "--metrics",
                          metrics.c_str()};
    if (!args.parse(5, argv)) std::abort();
    (void)obs::apply_obs_options(args, "death", {});
    { TP_OBS_SPAN("death.span"); }
    // Throw across a noexcept boundary: std::terminate fires at the throw
    // point itself, which the death-test harness cannot catch — the same
    // handler an exception escaping main() reaches.
    [&]() noexcept { throw std::runtime_error("uncaught"); }();
    std::abort();
}

TEST(FlushDeathTest, UncaughtExceptionStillLandsTraceAndMetrics) {
    // apply_obs_options installs a std::terminate hook; an exception that
    // escapes everything must still flush the (buffered) trace file and
    // close the metrics stream before the process dies.
    const std::string trace = temp_path("term.trace.json");
    const std::string metrics = temp_path("term.metrics.jsonl");
    EXPECT_DEATH(run_then_throw_uncaught(trace, metrics), "");
    const std::string doc = slurp(trace);
    ASSERT_FALSE(doc.empty())
        << "terminate hook did not write the trace file";
    EXPECT_TRUE(json::valid(doc));
    EXPECT_NE(doc.find("death.span"), std::string::npos);
    for (const auto& line : lines_of(metrics))
        EXPECT_TRUE(json::valid(line)) << line;
}

// ------------------------------- record-type round trip (all emitters)

TEST(RoundTrip, EveryRecordTypeSurvivesEmitThenParse) {
    // Drive the real emitters end to end — manifest (with non-ASCII and
    // deliberately invalid-encoding values), step, diagnostic, probe,
    // numerics, table — then require every line to pass the strict
    // validator AND the DOM parser, with a known type discriminator.
    const std::string path = temp_path("roundtrip.metrics.jsonl");
    obs::metrics().open(path);
    obs::write_manifest("round_trip",
                        {{"note", "h\xC3\xA9llo \xE6\x97\xA5\xE6\x9C\xAC"},
                         {"legacy", "raw\xFF" "byte"}});
    obs::metrics().write_line(json::Object()
                                  .field("type", "step")
                                  .field("t", 0.25)
                                  .field("dt", 1e-3)
                                  .field("wall_s", 0.01)
                                  .str());
    try {
        obs::raise_numerical_fault("unit.k", 3, "injected");
    } catch (const obs::NumericalFault&) {
    }
    obs::probe_reset();
    obs::set_probe_enabled(true);
    const float healthy[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    obs::probe_array("unit.rt", healthy, 4);
    obs::probe_flush_to_metrics();
    obs::set_probe_enabled(false);
    obs::shadow_reset();
    obs::DivergenceStats s;
    s.observe(std::nextafterf(1.0f, 2.0f), 1.0);
    obs::shadow_merge("unit.kernel", "arr", s);
    obs::shadow_flush_to_metrics();
    obs::shadow_reset();
    tp::util::TextTable table("rt");
    table.set_header({"a"});
    table.add_row({"1"});
    obs::metrics().write_line(table.json_str());
    obs::metrics().close();

    const auto lines = lines_of(path);
    ASSERT_EQ(lines.size(), 6u);
    std::vector<std::string> types;
    for (const auto& line : lines) {
        EXPECT_TRUE(json::valid(line)) << line;
        const auto v = json::parse(line);
        ASSERT_TRUE(v.has_value()) << line;
        types.push_back(v->string_or("type", "?"));
    }
    const std::vector<std::string> expected{"manifest", "step",
                                            "diagnostic", "probe",
                                            "numerics",  "table"};
    EXPECT_EQ(types, expected);

    // The decoded manifest strings: well-formed UTF-8 round-trips
    // byte-identical, the invalid 0xFF byte comes back as U+00FF.
    const auto manifest = json::parse(lines[0]);
    EXPECT_EQ(manifest->string_or("note", ""),
              "h\xC3\xA9llo \xE6\x97\xA5\xE6\x9C\xAC");
    EXPECT_EQ(manifest->string_or("legacy", ""),
              "raw\xC3\xBF"
              "byte");
    obs::probe_reset();
}

}  // namespace
