// Checkpoint subsystem tests: the v2 error-bounded compressed format,
// the size accounting contract (checkpoint_bytes == bytes on disk), the
// restore paths (shallow, SEM, and the sharded distributed restart), and
// the asynchronous double-buffered writer. DESIGN.md §14.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "compress/fixedrate.hpp"
#include "io/async_checkpoint.hpp"
#include "io/async_writer.hpp"
#include "io/checkpoint.hpp"
#include "par/dist_shallow.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"

using namespace tp;

namespace {

/// An ostream whose sink refuses every byte — models a full disk / closed
/// pipe so the write-failure contract can be asserted directly.
struct FailBuf : std::streambuf {
    int_type overflow(int_type) override { return traits_type::eof(); }
};

template <typename P>
shallow::ShallowWaterSolver<P> make_shallow(int grid, int levels,
                                            int steps) {
    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, grid, grid, levels};
    shallow::ShallowWaterSolver<P> s(cfg);
    s.initialize_dam_break({});
    s.run(steps);
    return s;
}

template <typename P>
sem::SpectralEulerSolver<P> make_sem(int steps) {
    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 3;
    sem::SpectralEulerSolver<P> s(cfg);
    s.initialize_thermal_bubble({});
    s.run(steps);
    return s;
}

template <typename S>
std::string checkpoint_string(const S& s,
                              const io::CheckpointOptions& opt) {
    std::stringstream os;
    s.write_checkpoint(os, opt);
    return std::move(os).str();
}

/// Per-block L-inf error of `back` vs `ref`, asserted against the
/// compressor's advertised bound at the block's own peak.
void expect_within_block_bounds(const std::vector<double>& ref,
                                const std::vector<double>& back, int bits,
                                const std::string& label) {
    ASSERT_EQ(ref.size(), back.size()) << label;
    for (std::size_t start = 0; start < ref.size();
         start += compress::kBlockSize) {
        const std::size_t len =
            std::min(compress::kBlockSize, ref.size() - start);
        double peak = 0.0;
        for (std::size_t i = 0; i < len; ++i)
            peak = std::max(peak, std::fabs(ref[start + i]));
        if (peak == 0.0) {
            for (std::size_t i = 0; i < len; ++i)
                EXPECT_EQ(back[start + i], 0.0) << label;
            continue;
        }
        const double bound = compress::error_bound(
            std::max(peak, std::ldexp(1.0, -1022)), bits);
        for (std::size_t i = 0; i < len; ++i)
            EXPECT_LE(std::fabs(back[start + i] - ref[start + i]), bound)
                << label << " block@" << start << " i=" << start + i;
    }
}

std::string temp_path(const std::string& stem) {
    return (std::filesystem::temp_directory_path() / stem).string();
}

}  // namespace

// ------------------------------------------------------- size contract
// checkpoint_bytes(opt) must equal the bytes write_checkpoint emits, for
// every policy, mesh depth, and compression mode — the cost model bills
// by this number, so it cannot drift from the truth.

template <typename P>
class ShallowCheckpoint : public ::testing::Test {};
using Policies =
    ::testing::Types<fp::MinimumPrecision, fp::MixedPrecision,
                     fp::FullPrecision>;
TYPED_TEST_SUITE(ShallowCheckpoint, Policies);

TYPED_TEST(ShallowCheckpoint, BytesMatchStreamAcrossModesAndLevels) {
    for (const int levels : {0, 2}) {
        const auto s = make_shallow<TypeParam>(16, levels, 12);
        // v1 (both spellings), drift, and two explicit rates.
        std::stringstream v1;
        s.write_checkpoint(v1);
        EXPECT_EQ(s.checkpoint_bytes(), v1.str().size());
        for (const auto& opt :
             {io::CheckpointOptions{},
              io::parse_checkpoint_compress("drift"),
              io::parse_checkpoint_compress("16"),
              io::parse_checkpoint_compress("5")}) {
            const std::string bytes = checkpoint_string(s, opt);
            EXPECT_EQ(s.checkpoint_bytes(opt), bytes.size())
                << "levels=" << levels
                << " mode=" << static_cast<int>(opt.mode)
                << " bits=" << opt.bits;
        }
    }
}

TYPED_TEST(ShallowCheckpoint, OffModeIsByteIdenticalToV1) {
    for (const int grid : {12, 20}) {
        for (const auto mode : {simd::Mode::Scalar, simd::Mode::Auto}) {
            shallow::Config cfg;
            cfg.geom = {0.0, 0.0, 100.0, 100.0, grid, grid, 1};
            cfg.simd = mode;
            shallow::ShallowWaterSolver<TypeParam> s(cfg);
            s.initialize_dam_break({});
            s.run(8);
            std::stringstream v1;
            s.write_checkpoint(v1);
            EXPECT_EQ(v1.str(),
                      checkpoint_string(s, io::CheckpointOptions{}))
                << "grid=" << grid;
        }
    }
}

TYPED_TEST(ShallowCheckpoint, CompressedRoundTripWithinBlockBounds) {
    const auto s = make_shallow<TypeParam>(16, 2, 15);
    std::stringstream raw;
    s.write_checkpoint(raw);
    const auto ref =
        shallow::ShallowWaterSolver<TypeParam>::read_checkpoint(raw);
    for (const int bits : {8, 16, 24}) {
        const auto opt = io::parse_checkpoint_compress(
            std::to_string(bits));
        std::stringstream os;
        s.write_checkpoint(os, opt);
        const auto back =
            shallow::ShallowWaterSolver<TypeParam>::read_checkpoint(os);
        expect_within_block_bounds(ref.h, back.h, bits, "h");
        expect_within_block_bounds(ref.hu, back.hu, bits, "hu");
        expect_within_block_bounds(ref.hv, back.hv, bits, "hv");
    }
}

TYPED_TEST(ShallowCheckpoint, DriftModeStaysUnderTheUlpBudget) {
    using Solver = shallow::ShallowWaterSolver<TypeParam>;
    const auto s = make_shallow<TypeParam>(16, 1, 10);
    std::stringstream raw;
    s.write_checkpoint(raw);
    const auto ref = Solver::read_checkpoint(raw);
    const std::uint64_t budget = 256;
    const auto opt = io::parse_checkpoint_compress("drift", budget);
    std::stringstream os;
    const io::CheckpointWriteInfo info = s.write_checkpoint(os, opt);
    ASSERT_EQ(info.bits.size(), 3u);
    const auto back = Solver::read_checkpoint(os);
    const int digits =
        io::storage_digits_v<typename Solver::storage_t>;
    const std::vector<double>* refs[] = {&ref.h, &ref.hu, &ref.hv};
    const std::vector<double>* backs[] = {&back.h, &back.hu, &back.hv};
    for (int a = 0; a < 3; ++a) {
        const double peak = io::peak_abs(*refs[a]);
        if (peak == 0.0) continue;
        // The drift tolerance, or the 32-bit floor when the budget is
        // tighter than the maximum rate can deliver (double storage).
        const double tol = static_cast<double>(budget) *
                           std::ldexp(1.0, std::ilogb(peak) + 1 - digits);
        const double floor32 = compress::error_bound(peak, 32);
        for (std::size_t i = 0; i < refs[a]->size(); ++i)
            ASSERT_LE(std::fabs((*backs[a])[i] - (*refs[a])[i]),
                      std::max(tol, floor32))
                << "array=" << a << " i=" << i;
    }
}

TYPED_TEST(ShallowCheckpoint, V1RestartContinuesBitIdentically) {
    using Solver = shallow::ShallowWaterSolver<TypeParam>;
    auto a = make_shallow<TypeParam>(16, 2, 15);
    std::stringstream os;
    a.write_checkpoint(os);

    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 2};
    Solver b(cfg);
    b.restore_checkpoint(Solver::read_checkpoint(os));
    EXPECT_EQ(b.step_count(), a.step_count());
    EXPECT_EQ(b.time(), a.time());

    a.run(10);
    b.run(10);
    std::stringstream sa, sb;
    a.write_checkpoint(sa);
    b.write_checkpoint(sb);
    EXPECT_EQ(sa.str(), sb.str());  // v1 bytes are the exact state
}

TYPED_TEST(ShallowCheckpoint, CompressedRestartStaysNearTheTruth) {
    using Solver = shallow::ShallowWaterSolver<TypeParam>;
    auto a = make_shallow<TypeParam>(16, 1, 12);
    std::stringstream os;
    a.write_checkpoint(os, io::parse_checkpoint_compress("drift"));

    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    Solver b(cfg);
    b.restore_checkpoint(Solver::read_checkpoint(os));
    EXPECT_EQ(b.step_count(), a.step_count());

    // The restored state differs from the truth by at most the drift
    // tolerance; mass (a linear functional of h) moves by no more.
    const double rel = std::fabs(b.total_mass() - a.total_mass()) /
                       std::fabs(a.total_mass());
    EXPECT_LE(rel, 1e-4);
    // And the restored solver must still step (topology was rebuilt).
    b.run(3);
    EXPECT_EQ(b.step_count(), a.step_count() + 3);
}

TYPED_TEST(ShallowCheckpoint, WriteFailureThrows) {
    const auto s = make_shallow<TypeParam>(12, 1, 5);
    FailBuf buf;
    std::ostream os(&buf);
    EXPECT_THROW(s.write_checkpoint(os), std::runtime_error);
    std::ostream os2(&buf);
    EXPECT_THROW(
        s.write_checkpoint(os2, io::parse_checkpoint_compress("16")),
        std::runtime_error);
}

TEST(ShallowCheckpointValidation, RejectsCorruptV2Streams) {
    using Solver = shallow::FullShallowSolver;
    const auto s = make_shallow<fp::FullPrecision>(12, 1, 5);
    const std::string good =
        checkpoint_string(s, io::parse_checkpoint_compress("12"));

    // Truncation anywhere in the array section must throw, not crash.
    for (const std::size_t keep :
         {good.size() - 1, good.size() / 2, std::size_t{90}}) {
        std::stringstream is(good.substr(0, keep));
        EXPECT_THROW((void)Solver::read_checkpoint(is),
                     std::runtime_error)
            << "keep=" << keep;
    }
    // A tampered per-array rate is caught by the record validation.
    std::string bad = good;
    const std::size_t cells_off = 84 + 12 * (s.mesh().num_cells());
    bad[cells_off] = 77;  // bits field of the first array record
    std::stringstream is(bad);
    EXPECT_THROW((void)Solver::read_checkpoint(is), std::runtime_error);
}

TEST(ShallowCheckpointValidation, RestoreRejectsMismatchedGeometry) {
    using Solver = shallow::FullShallowSolver;
    const auto s = make_shallow<fp::FullPrecision>(16, 1, 5);
    std::stringstream os;
    s.write_checkpoint(os);
    const auto d = Solver::read_checkpoint(os);

    shallow::Config other;
    other.geom = {0.0, 0.0, 100.0, 100.0, 24, 24, 1};
    Solver b(other);
    EXPECT_THROW(b.restore_checkpoint(d), std::invalid_argument);
}

TEST(AmrMeshRestore, RejectsInvalidCellLists) {
    const auto s = make_shallow<fp::FullPrecision>(12, 1, 8);
    const mesh::MeshGeometry geom = s.mesh().geometry();
    std::vector<mesh::Cell> cells(s.mesh().cells().begin(),
                                  s.mesh().cells().end());
    // The restore constructor re-sorts, so order is forgiven — but a
    // missing cell leaves a coverage hole and must be rejected.
    std::vector<mesh::Cell> holey = cells;
    holey.pop_back();
    EXPECT_THROW(mesh::AmrMesh(geom, holey), std::invalid_argument);
    // A duplicated cell double-covers its tile.
    std::vector<mesh::Cell> doubled = cells;
    doubled.push_back(doubled.front());
    EXPECT_THROW(mesh::AmrMesh(geom, doubled), std::invalid_argument);
    // The untouched list reconstructs fine.
    EXPECT_NO_THROW(mesh::AmrMesh(geom, cells));
}

// ------------------------------------------------------------------ SEM
template <typename P>
class SemCheckpoint : public ::testing::Test {};
TYPED_TEST_SUITE(SemCheckpoint, Policies);

TYPED_TEST(SemCheckpoint, BytesMatchStreamAcrossModes) {
    const auto s = make_sem<TypeParam>(2);
    std::stringstream v1;
    s.write_checkpoint(v1);
    EXPECT_EQ(s.checkpoint_bytes(), v1.str().size());
    for (const auto& opt :
         {io::CheckpointOptions{}, io::parse_checkpoint_compress("drift"),
          io::parse_checkpoint_compress("11")}) {
        EXPECT_EQ(s.checkpoint_bytes(opt),
                  checkpoint_string(s, opt).size());
    }
    EXPECT_EQ(v1.str(), checkpoint_string(s, io::CheckpointOptions{}));
}

TYPED_TEST(SemCheckpoint, V1RestartContinuesBitIdentically) {
    using Solver = sem::SpectralEulerSolver<TypeParam>;
    auto a = make_sem<TypeParam>(3);
    std::stringstream os;
    a.write_checkpoint(os);

    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 3;
    Solver b(cfg);
    // The checkpoint stores the perturbation state; the hydrostatic base
    // state comes from initialization (the drivers' restart order too).
    b.initialize_thermal_bubble({});
    b.restore_checkpoint(Solver::read_checkpoint(os));
    EXPECT_EQ(b.state_fingerprint(), a.state_fingerprint());
    a.run(2);
    b.run(2);
    EXPECT_EQ(b.state_fingerprint(), a.state_fingerprint());
}

TYPED_TEST(SemCheckpoint, CompressedRoundTripWithinBlockBounds) {
    using Solver = sem::SpectralEulerSolver<TypeParam>;
    const auto s = make_sem<TypeParam>(2);
    std::stringstream raw;
    s.write_checkpoint(raw);
    const auto ref = Solver::read_checkpoint(raw);
    const int bits = 14;
    std::stringstream os;
    s.write_checkpoint(os, io::parse_checkpoint_compress("14"));
    const auto back = Solver::read_checkpoint(os);
    for (int v = 0; v < sem::kVars; ++v) {
        std::string label = "q";
        label += std::to_string(v);
        expect_within_block_bounds(ref.q[v], back.q[v], bits, label);
    }
}

TYPED_TEST(SemCheckpoint, WriteFailureThrows) {
    const auto s = make_sem<TypeParam>(1);
    FailBuf buf;
    std::ostream os(&buf);
    EXPECT_THROW(s.write_checkpoint(os), std::runtime_error);
}

TEST(SemCheckpointValidation, RejectsCorruptHeaders) {
    using Solver = sem::DoubleSemSolver;
    const auto s = make_sem<fp::FullPrecision>(1);
    std::stringstream os;
    s.write_checkpoint(os);
    const std::string good = std::move(os).str();

    {  // bad magic
        std::string bad = good;
        bad[0] = 'X';
        std::stringstream is(bad);
        EXPECT_THROW((void)Solver::read_checkpoint(is),
                     std::runtime_error);
    }
    {  // truncated mid-arrays
        std::stringstream is(good.substr(0, good.size() - 7));
        EXPECT_THROW((void)Solver::read_checkpoint(is),
                     std::runtime_error);
    }
}

// ------------------------------------------------------- async writer
TEST(AsyncWriter, ExecutesInOrderAndWaits) {
    io::AsyncWriter w;
    std::vector<int> order;
    const auto t1 = w.submit([&] { order.push_back(1); });
    const auto t2 = w.submit([&] { order.push_back(2); });
    w.wait(t2);
    EXPECT_GE(t2, t1);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    w.wait_all();
}

TEST(AsyncWriter, PropagatesTheFirstError) {
    io::AsyncWriter w;
    w.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(w.wait_all(), std::runtime_error);
    // The error is consumed; the writer remains usable.
    bool ran = false;
    w.submit([&] { ran = true; });
    w.wait_all();
    EXPECT_TRUE(ran);
}

TEST(AsyncCheckpoint, BytesIdenticalToSyncPath) {
    using Solver = shallow::FullShallowSolver;
    const auto s = make_shallow<fp::FullPrecision>(16, 2, 12);
    const auto opt = io::parse_checkpoint_compress("drift");
    const std::string sync_bytes = checkpoint_string(s, opt);

    const std::string path = temp_path("tp_ckpt_async_test.bin");
    {
        io::AsyncCheckpointer<Solver> ac(opt);
        ac.checkpoint(s, path);
        ac.finish();
        EXPECT_EQ(ac.stall_seconds(), 0.0);  // <= 2 slots, no contention
    }
    std::ifstream is(path, std::ios::binary);
    ASSERT_TRUE(is.good());
    std::stringstream disk;
    disk << is.rdbuf();
    EXPECT_EQ(disk.str(), sync_bytes);
    std::remove(path.c_str());
}

TEST(AsyncCheckpoint, SolverMayAdvanceWhileTheWriteIsInFlight) {
    using Solver = shallow::FullShallowSolver;
    auto s = make_shallow<fp::FullPrecision>(16, 1, 5);
    const std::string path = temp_path("tp_ckpt_overlap_test.bin");
    const std::string expected = checkpoint_string(s, {});

    io::AsyncCheckpointer<Solver> ac;
    ac.checkpoint(s, path);
    s.run(5);  // mutate the live state after the snapshot was taken
    ac.finish();

    std::ifstream is(path, std::ios::binary);
    std::stringstream disk;
    disk << is.rdbuf();
    // The file holds the state at snapshot time, not the mutated state.
    EXPECT_EQ(disk.str(), expected);
    std::remove(path.c_str());
}

TEST(AsyncCheckpoint, ErrorsSurfaceAtFinish) {
    using Solver = shallow::FullShallowSolver;
    const auto s = make_shallow<fp::FullPrecision>(12, 1, 3);
    io::AsyncCheckpointer<Solver> ac;
    ac.checkpoint(s, "/nonexistent-dir/nope/ckpt.bin");
    EXPECT_THROW(ac.finish(), std::runtime_error);
}

// ------------------------------------------------- distributed restart
namespace {

template <typename P>
par::DistributedShallowSolver<P> make_dist(int grid, int ranks) {
    par::DistConfig cfg;
    cfg.nx = cfg.ny = grid;
    cfg.ranks = ranks;
    return par::DistributedShallowSolver<P>(cfg);
}

}  // namespace

TEST(DistRestart, RestoresAtADifferentRankCountBitwise) {
    const std::string base = temp_path("tp_dist_restart_v1");
    auto writer = make_dist<fp::MixedPrecision>(32, 4);
    writer.initialize_dam_break();
    writer.run(20);
    writer.write_restart(base);
    const auto truth = writer.gather_height();

    for (const int ranks : {1, 3, 4, 7}) {
        auto reader = make_dist<fp::MixedPrecision>(32, ranks);
        reader.initialize_dam_break();
        reader.restore_restart(base);
        EXPECT_EQ(reader.step_count(), writer.step_count());
        EXPECT_EQ(reader.time(), writer.time());
        EXPECT_EQ(reader.gather_height(), truth) << "ranks=" << ranks;
    }

    // Continuation is bitwise rank-count invariant from the restored
    // state, exactly as from the initial condition.
    auto r3 = make_dist<fp::MixedPrecision>(32, 3);
    r3.initialize_dam_break();
    r3.restore_restart(base);
    r3.run(10);
    writer.run(10);
    EXPECT_EQ(r3.gather_height(), writer.gather_height());

    for (int k = 0; k < 4; ++k)
        std::remove((base + ".shard" + std::to_string(k)).c_str());
    std::remove((base + ".manifest").c_str());
}

TEST(DistRestart, CompressedShardsRestoreIdenticallyAcrossReaders) {
    const std::string base = temp_path("tp_dist_restart_v2");
    auto writer = make_dist<fp::FullPrecision>(32, 4);
    writer.initialize_dam_break();
    writer.run(15);
    const auto info =
        writer.write_restart(base, io::parse_checkpoint_compress("drift"));
    EXPECT_EQ(info.version, 2u);
    EXPECT_LT(info.written_bytes, info.raw_bytes);
    EXPECT_EQ(info.bits.size(), 3u * 4u);  // 3 arrays x 4 shards

    auto r2 = make_dist<fp::FullPrecision>(32, 2);
    r2.initialize_dam_break();
    r2.restore_restart(base);
    auto r5 = make_dist<fp::FullPrecision>(32, 5);
    r5.initialize_dam_break();
    r5.restore_restart(base);
    // Decompression is deterministic, so every reader adopts the same
    // state regardless of its decomposition...
    EXPECT_EQ(r2.gather_height(), r5.gather_height());
    // ...and that state sits within the drift tolerance of the truth.
    const auto truth = writer.gather_height();
    const auto got = r2.gather_height();
    double peak = 0.0;
    for (const double v : truth) peak = std::max(peak, std::fabs(v));
    const double tol =
        256.0 * std::ldexp(1.0, std::ilogb(peak) + 1 - 53);
    const double floor32 = compress::error_bound(peak, 32);
    for (std::size_t i = 0; i < truth.size(); ++i)
        ASSERT_LE(std::fabs(got[i] - truth[i]),
                  std::max(tol, floor32));

    for (int k = 0; k < 4; ++k)
        std::remove((base + ".shard" + std::to_string(k)).c_str());
    std::remove((base + ".manifest").c_str());
}

TEST(DistRestart, RejectsCorruptManifestsAndShards) {
    const std::string base = temp_path("tp_dist_restart_bad");
    auto writer = make_dist<fp::FullPrecision>(16, 2);
    writer.initialize_dam_break();
    writer.run(5);
    writer.write_restart(base);

    auto reader = make_dist<fp::FullPrecision>(16, 2);
    reader.initialize_dam_break();

    const std::string manifest = base + ".manifest";
    std::ifstream mf(manifest, std::ios::binary);
    std::stringstream copy;
    copy << mf.rdbuf();
    const std::string good = copy.str();
    mf.close();

    auto rewrite = [&](const std::string& bytes) {
        std::ofstream os(manifest, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    };

    {  // bad magic
        std::string bad = good;
        bad[0] = 'X';
        rewrite(bad);
        EXPECT_THROW(reader.restore_restart(base), std::runtime_error);
    }
    {  // truncated
        rewrite(good.substr(0, good.size() / 2));
        EXPECT_THROW(reader.restore_restart(base), std::runtime_error);
    }
    {  // grid mismatch
        rewrite(good);
        auto other = make_dist<fp::FullPrecision>(24, 2);
        other.initialize_dam_break();
        EXPECT_THROW(other.restore_restart(base), std::runtime_error);
    }
    {  // missing shard file
        rewrite(good);
        std::remove((base + ".shard1").c_str());
        EXPECT_THROW(reader.restore_restart(base), std::runtime_error);
    }
    std::remove((base + ".shard0").c_str());
    std::remove(manifest.c_str());
}

// ------------------------------------------------------------ options
TEST(CheckpointOptions, ParsesAndRejectsSpecs) {
    EXPECT_EQ(io::parse_checkpoint_compress("off").mode,
              io::CheckpointCompress::Off);
    EXPECT_EQ(io::parse_checkpoint_compress("drift").mode,
              io::CheckpointCompress::Drift);
    const auto fixed = io::parse_checkpoint_compress("12");
    EXPECT_EQ(fixed.mode, io::CheckpointCompress::Fixed);
    EXPECT_EQ(fixed.bits, 12);
    for (const char* bad : {"", "1", "33", "12x", "driftt", "on"})
        EXPECT_THROW((void)io::parse_checkpoint_compress(bad),
                     std::invalid_argument)
            << bad;
}

TEST(CheckpointOptions, DriftBitsTrackTheBudgetAndStorage) {
    // Tighter budgets and wider storage types demand higher rates.
    const double peak = 123.0;
    EXPECT_GE(io::drift_bits(peak, 16, 24), io::drift_bits(peak, 256, 24));
    EXPECT_GE(io::drift_bits(peak, 256, 53),
              io::drift_bits(peak, 256, 24));
    EXPECT_EQ(io::drift_bits(0.0, 256, 53), 2);  // all-zero array
    // Half storage at a loose budget compresses hard but stays >= 2.
    EXPECT_GE(io::drift_bits(peak, 1024, 11), 2);
}
