#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <tuple>

#include "analysis/linecut.hpp"
#include "fp/half_policy.hpp"
#include "shallow/solver.hpp"

namespace tsh = tp::shallow;
namespace tf = tp::fp;

namespace {

tsh::Config small_config(int n = 32, int levels = 2) {
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
    return cfg;
}

template <typename Solver>
Solver make_run(const tsh::Config& cfg, int steps) {
    Solver s(cfg);
    s.initialize_dam_break({});
    s.run(steps);
    return s;
}

}  // namespace

// ------------------------------------------------------------ conservation
template <typename Policy>
class ShallowPolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<tf::MinimumPrecision, tf::MixedPrecision,
                                  tf::FullPrecision>;
TYPED_TEST_SUITE(ShallowPolicyTest, Policies);

TYPED_TEST(ShallowPolicyTest, MassConservedThroughRunAndRezone) {
    tsh::ShallowWaterSolver<TypeParam> s(small_config());
    s.initialize_dam_break({});
    const double m0 = s.total_mass();
    s.run(60);  // crosses several rezone intervals
    const double m1 = s.total_mass();
    // Conservative scheme + reflective walls + conservative remap: only
    // storage rounding remains (coarser for float storage).
    const double tol = sizeof(typename TypeParam::storage_t) == 4
                           ? 5e-5
                           : 1e-11;
    EXPECT_NEAR(m1 / m0, 1.0, tol);
}

TYPED_TEST(ShallowPolicyTest, LakeAtRestStaysAtRest) {
    tsh::ShallowWaterSolver<TypeParam> s(small_config(16, 1));
    tsh::DamBreak flat;
    flat.h_inside = 10.0;
    flat.h_outside = 10.0;  // no dam: constant state
    s.initialize_dam_break(flat);
    s.run(20);
    const auto cut = s.sample_height_vertical(50.03, 64);
    for (const double h : cut) EXPECT_NEAR(h, 10.0, 1e-5);
}

TYPED_TEST(ShallowPolicyTest, PositiveTimestep) {
    tsh::ShallowWaterSolver<TypeParam> s(small_config(16, 1));
    s.initialize_dam_break({});
    const double dt = s.step();
    EXPECT_GT(dt, 0.0);
    EXPECT_LT(dt, 1.0);
    EXPECT_EQ(s.step_count(), 1);
    EXPECT_GT(s.time(), 0.0);
}

TYPED_TEST(ShallowPolicyTest, MeshInvariantsHoldDuringRun) {
    tsh::ShallowWaterSolver<TypeParam> s(small_config(16, 2));
    s.initialize_dam_break({});
    for (int i = 0; i < 30; ++i) {
        s.step();
        std::string why;
        ASSERT_TRUE(s.mesh().check_invariants(&why)) << why;
    }
}

// ---------------------------------------------------------------- symmetry
TEST(Shallow, DoublePrecisionMirrorSymmetry) {
    auto s = make_run<tsh::FullShallowSolver>(small_config(), 80);
    // Sample at finest-grid cell centers: exact mirror mapping, never on a
    // face (see analysis::face_free_positions).
    const int fine = 32 << 2;
    const auto ys = tp::analysis::face_free_positions(0.0, 100.0, fine);
    double max_asym = 0.0;
    for (std::size_t k = 0; k < ys.size() / 2; ++k) {
        const double a = s.height_at(50.2, ys[k]);
        const double b = s.height_at(50.2, ys[ys.size() - 1 - k]);
        max_asym = std::max(max_asym, std::fabs(a - b));
    }
    EXPECT_LT(max_asym, 1e-10);  // rounding-level only
}

TEST(Shallow, ReducedPrecisionAmplifiesAsymmetryButStaysSmall) {
    // The paper's Figure 2 claim: minimum precision has larger mirror
    // asymmetry than full, but still >= 1e6x below the solution magnitude.
    auto smin = make_run<tsh::MinimumShallowSolver>(small_config(), 80);
    auto sful = make_run<tsh::FullShallowSolver>(small_config(), 80);
    const int fine = 32 << 2;
    const auto ys = tp::analysis::face_free_positions(0.0, 100.0, fine);
    auto max_asym = [&](auto& s) {
        double m = 0.0;
        for (std::size_t k = 0; k < ys.size() / 2; ++k)
            m = std::max(m, std::fabs(s.height_at(50.2, ys[k]) -
                                      s.height_at(50.2, ys[ys.size() - 1 - k])));
        return m;
    };
    const double a_min = max_asym(smin);
    const double a_full = max_asym(sful);
    EXPECT_GT(a_min, a_full);
    EXPECT_LT(a_min, 80.0 * 1e-3);  // far below solution magnitude
}

// ----------------------------------------------------- precision closeness
TEST(Shallow, PrecisionLevelsAgreeClosely) {
    // Figure 1: the three precision levels produce visually identical
    // slices; differences are orders of magnitude below the solution, and
    // |full - mixed| < |full - min|.
    const auto cfg = small_config();
    auto smin = make_run<tsh::MinimumShallowSolver>(cfg, 60);
    auto smix = make_run<tsh::MixedShallowSolver>(cfg, 60);
    auto sful = make_run<tsh::FullShallowSolver>(cfg, 60);

    const int fine = 32 << 2;
    const auto ys = tp::analysis::face_free_positions(0.0, 100.0, fine);
    auto cut = [&](auto& s) {
        std::vector<double> v;
        for (const double y : ys) v.push_back(s.height_at(50.2, y));
        return v;
    };
    const auto cmin = cut(smin);
    const auto cmix = cut(smix);
    const auto cful = cut(sful);

    const auto m_min = tf::compare(cful, cmin);
    const auto m_mix = tf::compare(cful, cmix);
    // Several digits of agreement even in the worst case.
    EXPECT_GT(m_min.digits_of_agreement(), 3.0);
    EXPECT_GT(m_mix.digits_of_agreement(), 3.0);
    // Mixed tracks full more closely than minimum does.
    EXPECT_LE(m_mix.linf, m_min.linf * 1.5);
}

TEST(Shallow, VectorizedAndScalarKernelsAgree) {
    auto cfg = small_config(16, 1);
    cfg.simd = tp::simd::Mode::Native;
    auto sv = make_run<tsh::FullShallowSolver>(cfg, 40);
    cfg.simd = tp::simd::Mode::Scalar;
    auto ss = make_run<tsh::FullShallowSolver>(cfg, 40);
    // Same arithmetic in the same per-element order: the pack contract
    // (simd/pack.hpp) makes the native and scalar sweeps bit-identical,
    // not merely close. test_simd.cpp checks the full checkpoint bits;
    // here a line-out must match exactly.
    const auto a = sv.sample_height_vertical(50.2, 101);
    const auto b = ss.sample_height_vertical(50.2, 101);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// -------------------------------------------------------------- checkpoint
TEST(Shallow, CheckpointRoundTrip) {
    auto s = make_run<tsh::FullShallowSolver>(small_config(16, 1), 10);
    std::stringstream buf;
    s.write_checkpoint(buf);
    EXPECT_EQ(static_cast<std::uint64_t>(buf.str().size()),
              s.checkpoint_bytes());

    const auto d = tsh::FullShallowSolver::read_checkpoint(buf);
    EXPECT_EQ(d.cells.size(), s.mesh().num_cells());
    EXPECT_DOUBLE_EQ(d.time, s.time());
    EXPECT_EQ(d.step, s.step_count());
    // Spot-check state round-trip at cell centers.
    for (std::size_t c = 0; c < d.cells.size(); c += 7) {
        const auto& cell = d.cells[c];
        const double x = s.mesh().cell_center_x(cell);
        const double y = s.mesh().cell_center_y(cell);
        EXPECT_DOUBLE_EQ(d.h[c], s.height_at(x, y));
    }
}

TEST(Shallow, CheckpointSizeRatioIsTwoThirds) {
    // Table III: min/mixed checkpoints are ~2/3 the size of full ones
    // (86M vs 128M), because 12 bytes/cell of mesh metadata ride along
    // with 3 state arrays.
    const auto cfg = small_config(16, 1);
    tsh::MinimumShallowSolver smin(cfg);
    tsh::MixedShallowSolver smix(cfg);
    tsh::FullShallowSolver sful(cfg);
    smin.initialize_dam_break({});
    smix.initialize_dam_break({});
    sful.initialize_dam_break({});
    ASSERT_EQ(smin.mesh().num_cells(), sful.mesh().num_cells());
    const double ratio =
        static_cast<double>(smin.checkpoint_bytes()) /
        static_cast<double>(sful.checkpoint_bytes());
    EXPECT_NEAR(ratio, 2.0 / 3.0, 0.01);
    EXPECT_EQ(smin.checkpoint_bytes(), smix.checkpoint_bytes());
}

TEST(Shallow, CheckpointRejectsGarbage) {
    std::stringstream buf;
    buf << "not a checkpoint at all";
    EXPECT_THROW((void)tsh::FullShallowSolver::read_checkpoint(buf),
                 std::runtime_error);
}

// Round-trip through every storage width, including 2-byte half storage:
// every stored element widens losslessly to double, so the reader must
// reproduce height_at() bit-for-bit at each cell center.
template <typename Policy>
class CheckpointPolicyTest : public ::testing::Test {};

using CheckpointPolicies =
    ::testing::Types<tf::MinimumPrecision, tf::MixedPrecision,
                     tf::FullPrecision, tf::HalfStoragePrecision>;
TYPED_TEST_SUITE(CheckpointPolicyTest, CheckpointPolicies);

TYPED_TEST(CheckpointPolicyTest, RoundTripIsLossless) {
    auto s = make_run<tsh::ShallowWaterSolver<TypeParam>>(
        small_config(16, 1), 6);
    std::stringstream buf;
    s.write_checkpoint(buf);
    EXPECT_EQ(static_cast<std::uint64_t>(buf.str().size()),
              s.checkpoint_bytes());

    const auto d = tsh::FullShallowSolver::read_checkpoint(buf);
    ASSERT_EQ(d.cells.size(), s.mesh().num_cells());
    EXPECT_DOUBLE_EQ(d.time, s.time());
    EXPECT_EQ(d.step, s.step_count());
    EXPECT_EQ(d.geom.max_level, s.config().geom.max_level);
    for (std::size_t c = 0; c < d.cells.size(); ++c) {
        const auto& cell = d.cells[c];
        EXPECT_EQ(d.h[c], s.height_at(s.mesh().cell_center_x(cell),
                                      s.mesh().cell_center_y(cell)))
            << "cell " << c;
    }
}

namespace {

/// A well-formed checkpoint to corrupt, as raw bytes.
std::string valid_checkpoint() {
    auto s = make_run<tsh::FullShallowSolver>(small_config(16, 1), 3);
    std::stringstream buf;
    s.write_checkpoint(buf);
    return buf.str();
}

void expect_rejected(std::string bytes) {
    std::stringstream buf(std::move(bytes));
    EXPECT_THROW((void)tsh::FullShallowSolver::read_checkpoint(buf),
                 std::runtime_error);
}

/// Overwrite sizeof(T) bytes at `offset` in the serialized header.
template <typename T>
std::string patched(std::string bytes, std::size_t offset, T value) {
    std::memcpy(bytes.data() + offset, &value, sizeof value);
    return bytes;
}

// Header layout offsets (see write_checkpoint).
constexpr std::size_t kOffElemSize = 8;
constexpr std::size_t kOffCellCount = 16;
constexpr std::size_t kOffStep = 32;
constexpr std::size_t kOffMaxLevel = 80;

}  // namespace

TEST(Shallow, CheckpointRejectsTruncatedHeader) {
    const std::string good = valid_checkpoint();
    expect_rejected(good.substr(0, 20));  // cut inside the header
    expect_rejected(good.substr(0, 83));  // one byte short of a header
}

TEST(Shallow, CheckpointRejectsTruncatedPayload) {
    const std::string good = valid_checkpoint();
    // Header intact, arrays cut short: the seekable-stream size check
    // fires before any allocation happens.
    expect_rejected(good.substr(0, good.size() - 64));
    expect_rejected(good.substr(0, 84));  // header only, no cells at all
}

TEST(Shallow, CheckpointRejectsAbsurdCellCount) {
    const std::string good = valid_checkpoint();
    // A hostile header promising ~1e18 cells must be rejected from the
    // header fields alone, not by attempting an exabyte resize().
    expect_rejected(
        patched<std::uint64_t>(good, kOffCellCount, std::uint64_t{1} << 60));
    // Plausibly small but still more than the stream holds.
    expect_rejected(patched<std::uint64_t>(
        good, kOffCellCount,
        static_cast<std::uint64_t>(16 * 16 * 4) /* full refinement */));
    expect_rejected(patched<std::uint64_t>(good, kOffCellCount, 0));
}

TEST(Shallow, CheckpointRejectsCorruptCellMetadata) {
    // Payload validation: the header can be pristine while a cell record
    // is garbage. An out-of-range level or coordinate must be rejected at
    // read time, not flow into mesh rebuilds as a wild index. The cells
    // section starts at byte 84, 12 bytes (level, i, j as int32) per cell.
    const std::string good = valid_checkpoint();
    constexpr std::size_t kOffCells = 84;
    // level outside [0, max_level] (the run was built with max_level 1).
    expect_rejected(patched<std::int32_t>(good, kOffCells + 0, 2));
    expect_rejected(patched<std::int32_t>(good, kOffCells + 0, -1));
    // i / j outside the level-l grid (16 coarse cells per side).
    expect_rejected(patched<std::int32_t>(good, kOffCells + 4, 1 << 20));
    expect_rejected(patched<std::int32_t>(good, kOffCells + 4, -3));
    expect_rejected(patched<std::int32_t>(good, kOffCells + 8, 32));
    // The bound is per-level: j = 16 fits the level-1 grid (32 cells per
    // side) but not the level-0 grid.
    expect_rejected(patched<std::int32_t>(
        patched<std::int32_t>(good, kOffCells + 0, 0), kOffCells + 8, 16));
    std::stringstream fine(patched<std::int32_t>(
        patched<std::int32_t>(good, kOffCells + 0, 1), kOffCells + 8, 16));
    EXPECT_NO_THROW(
        (void)tsh::FullShallowSolver::read_checkpoint(fine));
}

TEST(Shallow, CheckpointRejectsBadHeaderFields) {
    const std::string good = valid_checkpoint();
    expect_rejected(patched<std::uint32_t>(good, kOffElemSize, 3));
    expect_rejected(patched<std::int64_t>(good, kOffStep, -1));
    expect_rejected(patched<std::int32_t>(
        good, kOffMaxLevel,
        tsh::FullShallowSolver::kMaxSupportedLevel + 1));
    expect_rejected(patched<std::int32_t>(good, kOffMaxLevel, -1));
}

// ------------------------------------------------------ config validation
TEST(Shallow, RejectsOutOfRangeConfig) {
    // Regression for the latent OOB in compute_dt: a solver constructed
    // with max_level > kMaxSupportedLevel used to index past the fixed
    // per-level spacing table on its first step.
    auto cfg = small_config(8, 0);
    cfg.geom.max_level = tsh::FullShallowSolver::kMaxSupportedLevel + 1;
    EXPECT_THROW((tsh::FullShallowSolver{cfg}), std::invalid_argument);
    cfg.geom.max_level = -1;
    EXPECT_THROW((tsh::FullShallowSolver{cfg}), std::invalid_argument);
    cfg = small_config(8, 0);
    cfg.geom.coarse_nx = 0;
    EXPECT_THROW((tsh::FullShallowSolver{cfg}), std::invalid_argument);
}

TEST(Shallow, AcceptsMaxSupportedLevel) {
    auto cfg = small_config(2, 0);
    cfg.geom.max_level = tsh::FullShallowSolver::kMaxSupportedLevel;
    tsh::FullShallowSolver s(cfg);
    s.initialize_dam_break({});
    EXPECT_GT(s.step(), 0.0);  // compute_dt's level table covers 0..15
}

// ----------------------------------------------------------- memory/ledger
TEST(Shallow, StateBytesReflectPrecision) {
    const auto cfg = small_config(16, 1);
    tsh::MinimumShallowSolver smin(cfg);
    tsh::FullShallowSolver sful(cfg);
    smin.initialize_dam_break({});
    sful.initialize_dam_break({});
    ASSERT_EQ(smin.mesh().num_cells(), sful.mesh().num_cells());
    EXPECT_LT(smin.state_bytes(), sful.state_bytes());
    EXPECT_DOUBLE_EQ(
        static_cast<double>(sful.state_bytes()) / smin.state_bytes(), 2.0);
}

TEST(Shallow, LedgerRecordsKernels) {
    auto s = make_run<tsh::FullShallowSolver>(small_config(16, 1), 8);
    const auto* fd = s.ledger().find("finite_diff");
    ASSERT_NE(fd, nullptr);
    EXPECT_EQ(fd->invocations, 8u);
    EXPECT_GT(fd->flops_dp, 0u);
    EXPECT_EQ(fd->flops_sp, 0u);
    EXPECT_GT(fd->bytes, 0u);
    const auto* cfl = s.ledger().find("cfl");
    ASSERT_NE(cfl, nullptr);
    EXPECT_EQ(cfl->invocations, 8u);
    // The rezone pipeline reports per-phase entries, not one aggregate.
    for (const char* phase :
         {"rezone_flags", "rezone_adapt", "rezone_remap", "rezone_cache"}) {
        const auto* w = s.ledger().find(phase);
        ASSERT_NE(w, nullptr) << phase;
        EXPECT_GT(w->invocations, 0u) << phase;
        EXPECT_GT(w->bytes, 0u) << phase;
        EXPECT_EQ(w->flops(), 0u) << phase;  // streaming/integer work
    }
    const auto rz = s.ledger().total_matching("rezone_");
    EXPECT_EQ(rz.invocations, 4 * s.rezone_stats().rezones);
    EXPECT_GT(s.timers().total("rezone"), 0.0);  // aggregate timer remains
    EXPECT_GT(s.timers().total("finite_diff"), 0.0);
}

// After a run full of rezones, the incrementally maintained slot tables
// must match a from-scratch face-scan rebuild bit-for-bit.
TYPED_TEST(ShallowPolicyTest, IncrementalCachesConsistentAfterRezones) {
    auto cfg = small_config(16, 3);
    cfg.rezone_interval = 2;
    tsh::ShallowWaterSolver<TypeParam> s(cfg);
    s.initialize_dam_break({});
    s.run(30);
    EXPECT_GT(s.rezone_stats().rezones, 0u);
    EXPECT_TRUE(s.topology_caches_consistent());
}

// Incremental and Full rezone modes are the same physics: identical
// checkpoints and identical neighbor tables after identical runs.
TYPED_TEST(ShallowPolicyTest, IncrementalMatchesFullRebuildBitwise) {
    auto run_mode = [](tsh::RezoneMode mode) {
        auto cfg = small_config(16, 3);
        cfg.rezone_interval = 2;
        cfg.rezone_mode = mode;
        tsh::ShallowWaterSolver<TypeParam> s(cfg);
        s.initialize_dam_break({});
        s.run(30);
        std::ostringstream os(std::ios::binary);
        s.write_checkpoint(os);
        return std::make_tuple(std::move(os).str(), s.neighbor_indices(),
                               s.neighbor_areas());
    };
    const auto inc = run_mode(tsh::RezoneMode::Incremental);
    const auto full = run_mode(tsh::RezoneMode::Full);
    EXPECT_EQ(std::get<0>(inc), std::get<0>(full));
    EXPECT_EQ(std::get<1>(inc), std::get<1>(full));
    // Areas: element-wise bitwise comparison (== on NaN-free data).
    ASSERT_EQ(std::get<2>(inc).size(), std::get<2>(full).size());
    EXPECT_TRUE(std::equal(std::get<2>(inc).begin(), std::get<2>(inc).end(),
                           std::get<2>(full).begin()));
}

// Rezone bookkeeping: every post-adapt cell is either translated through
// the span offset map or resolved from the mesh, never both or neither.
TEST(Shallow, RezoneStatsPartitionCells) {
    auto cfg = small_config(16, 3);
    cfg.rezone_interval = 2;
    auto s = make_run<tsh::FullShallowSolver>(cfg, 30);
    const auto& st = s.rezone_stats();
    ASSERT_GT(st.rezones, 0u);
    EXPECT_GT(st.copy_spans, 0u);
    EXPECT_GT(st.translated_cells, 0u);
    EXPECT_GT(st.resolved_cells, 0u);
    // cells_touched sums old + new cells per rezone; translated + resolved
    // partition the new cells, so together they are strictly less.
    EXPECT_LT(st.translated_cells + st.resolved_cells, st.cells_touched);
}

TEST(Shallow, MixedModeRecordsConversions) {
    auto s = make_run<tsh::MixedShallowSolver>(small_config(16, 1), 4);
    const auto* fd = s.ledger().find("finite_diff");
    ASSERT_NE(fd, nullptr);
    EXPECT_GT(fd->convert_ops, 0u);
    EXPECT_GT(fd->flops_dp, 0u);  // mixed computes in double
    auto sm = make_run<tsh::MinimumShallowSolver>(small_config(16, 1), 4);
    EXPECT_EQ(sm.ledger().find("finite_diff")->convert_ops, 0u);
}

TEST(Shallow, HeightAtOutsideDomainThrows) {
    tsh::FullShallowSolver s(small_config(16, 1));
    s.initialize_dam_break({});
    EXPECT_THROW((void)s.height_at(-5.0, 50.0), std::out_of_range);
    EXPECT_THROW((void)s.height_at(50.0, 150.0), std::out_of_range);
}

// ------------------------------------------------- resolution trade (Fig 3)
TEST(Shallow, HigherResolutionResolvesSharperFront) {
    // Fig. 3's premise: a minimum-precision high-resolution run shows more
    // structure than a full-precision low-resolution run. Check the proxy:
    // the maximum height gradient along the cut grows with resolution.
    auto lo = make_run<tsh::FullShallowSolver>(small_config(16, 1), 40);
    auto hi = make_run<tsh::MinimumShallowSolver>(small_config(32, 2), 40);
    auto max_grad = [](const std::vector<double>& v) {
        double g = 0.0;
        for (std::size_t i = 1; i < v.size(); ++i)
            g = std::max(g, std::fabs(v[i] - v[i - 1]));
        return g;
    };
    const auto cl = lo.sample_height_vertical(50.2, 257);
    const auto ch = hi.sample_height_vertical(50.2, 257);
    EXPECT_GT(max_grad(ch), max_grad(cl));
}

// --------------------------------------------------- parameterized sweeps
class ShallowSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShallowSweep, MassConservedAcrossGeometries) {
    const auto [n, levels] = GetParam();
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
    tsh::FullShallowSolver s(cfg);
    s.initialize_dam_break({});
    const double m0 = s.total_mass();
    s.run(30);
    EXPECT_NEAR(s.total_mass() / m0, 1.0, 1e-11)
        << "n=" << n << " levels=" << levels;
    std::string why;
    EXPECT_TRUE(s.mesh().check_invariants(&why)) << why;
}

TEST_P(ShallowSweep, TimestepRespectsCfl) {
    const auto [n, levels] = GetParam();
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
    tsh::FullShallowSolver s(cfg);
    s.initialize_dam_break({});
    for (int k = 0; k < 10; ++k) {
        const double dt = s.step();
        // dt <= C * finest_dx / c_min where c_min >= sqrt(g*h_out).
        const double bound = cfg.courant * s.mesh().finest_dx() /
                             std::sqrt(cfg.gravity * 10.0);
        EXPECT_LE(dt, bound * 1.0001);
        EXPECT_GT(dt, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ShallowSweep,
    ::testing::Combine(::testing::Values(16, 24, 40),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Shallow, InitialMassMatchesAnalyticArea) {
    // mass = pi r^2 (h_in - h_out) + A_domain h_out, up to the staircase
    // approximation of the circle at the finest level.
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 64, 64, 2};
    tsh::FullShallowSolver s(cfg);
    tsh::DamBreak ic;
    s.initialize_dam_break(ic);
    const double r = ic.radius_fraction * 100.0;
    const double analytic = 3.14159265358979 * r * r *
                                (ic.h_inside - ic.h_outside) +
                            100.0 * 100.0 * ic.h_outside;
    EXPECT_NEAR(s.total_mass() / analytic, 1.0, 5e-3);
}

TEST(Shallow, RunZeroStepsIsIdentity) {
    tsh::FullShallowSolver s(small_config(16, 1));
    s.initialize_dam_break({});
    const double m0 = s.total_mass();
    s.run(0);
    EXPECT_EQ(s.step_count(), 0);
    EXPECT_EQ(s.time(), 0.0);
    EXPECT_EQ(s.total_mass(), m0);
}

TEST(Shallow, ReinitializationResetsClock) {
    tsh::FullShallowSolver s(small_config(16, 1));
    s.initialize_dam_break({});
    s.run(5);
    EXPECT_GT(s.time(), 0.0);
    s.initialize_dam_break({});
    EXPECT_EQ(s.time(), 0.0);
    EXPECT_EQ(s.step_count(), 0);
}

TEST(Shallow, CheckpointCrossWidthRead) {
    // A minimum-precision checkpoint is readable through any solver class
    // (the reader dispatches on the stored element width).
    tsh::MinimumShallowSolver s(small_config(16, 1));
    s.initialize_dam_break({});
    s.run(5);
    std::stringstream buf;
    s.write_checkpoint(buf);
    const auto d = tsh::FullShallowSolver::read_checkpoint(buf);
    EXPECT_EQ(d.cells.size(), s.mesh().num_cells());
    // Values widen exactly (float -> double is lossless).
    const auto& cell = d.cells.front();
    EXPECT_EQ(d.h.front(),
              s.height_at(s.mesh().cell_center_x(cell),
                          s.mesh().cell_center_y(cell)));
}
