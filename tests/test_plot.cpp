#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/plot.hpp"

namespace tu = tp::util;

namespace {
std::vector<double> linspace(double a, double b, int n) {
    std::vector<double> v(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        v[static_cast<std::size_t>(i)] = a + (b - a) * i / (n - 1);
    return v;
}
}  // namespace

TEST(AsciiPlot, RendersExpectedDimensions) {
    const auto x = linspace(0.0, 1.0, 50);
    tu::PlotSeries s{"sin", {}, '*'};
    for (const double v : x) s.y.push_back(std::sin(6.28 * v));
    tu::PlotOptions opt;
    opt.width = 40;
    opt.height = 10;
    opt.title = "wave";
    const std::vector<tu::PlotSeries> series{s};
    const std::string out = tu::ascii_plot(x, series, opt);
    EXPECT_NE(out.find("wave"), std::string::npos);
    EXPECT_NE(out.find("* = sin"), std::string::npos);
    // Title + height rows + axis + x labels + legend.
    int lines = 0;
    std::istringstream is(out);
    for (std::string l; std::getline(is, l);) ++lines;
    EXPECT_EQ(lines, 1 + 10 + 1 + 1 + 1);
}

TEST(AsciiPlot, MarksExtremesOnCorrectRows) {
    // A ramp: the max lands on the top row, the min on the bottom row.
    const auto x = linspace(0.0, 1.0, 30);
    tu::PlotSeries s{"ramp", {}, '*'};
    for (const double v : x) s.y.push_back(v);
    tu::PlotOptions opt;
    opt.width = 30;
    opt.height = 8;
    const std::vector<tu::PlotSeries> series{s};
    std::istringstream is(tu::ascii_plot(x, series, opt));
    std::vector<std::string> rows;
    for (std::string l; std::getline(is, l);) rows.push_back(l);
    // First canvas row contains a mark near the right edge, last near left.
    const std::string& top = rows[0];
    const std::string& bottom = rows[7];
    EXPECT_GT(top.rfind('*'), top.size() / 2);
    EXPECT_LT(bottom.find('*'), bottom.size() / 2 + 4);
}

TEST(AsciiPlot, CollisionsRenderAsHash) {
    const auto x = linspace(0.0, 1.0, 20);
    tu::PlotSeries a{"a", std::vector<double>(20, 0.5), '.'};
    tu::PlotSeries b{"b", std::vector<double>(20, 0.5), 'o'};
    const std::vector<tu::PlotSeries> series{a, b};
    const std::string out = tu::ascii_plot(x, series);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesGetsWindow) {
    const auto x = linspace(0.0, 1.0, 5);
    const std::vector<tu::PlotSeries> series{
        {"flat", std::vector<double>(5, 2.0), '*'}};
    EXPECT_NO_THROW({
        const auto out = tu::ascii_plot(x, series);
        EXPECT_NE(out.find('*'), std::string::npos);
    });
    const std::vector<tu::PlotSeries> zero{
        {"zero", std::vector<double>(5, 0.0), '*'}};
    EXPECT_NO_THROW((void)tu::ascii_plot(x, zero));
}

TEST(AsciiPlot, ValidatesInput) {
    const auto x = linspace(0.0, 1.0, 5);
    const std::vector<tu::PlotSeries> none;
    EXPECT_THROW((void)tu::ascii_plot(x, none), std::invalid_argument);
    const std::vector<tu::PlotSeries> ragged{
        {"bad", std::vector<double>(3, 1.0), '*'}};
    EXPECT_THROW((void)tu::ascii_plot(x, ragged), std::invalid_argument);
    const std::vector<double> empty;
    EXPECT_THROW((void)tu::ascii_plot(empty, ragged), std::invalid_argument);
}
