#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fp/half_policy.hpp"
#include "fp/precision.hpp"
#include "perf/counters.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"
#include "sum/expansion.hpp"
#include "sum/parallel.hpp"
#include "util/cli.hpp"
#include "util/threads.hpp"
#include "util/timing.hpp"
#include "util/rng.hpp"

namespace tf = tp::fp;
namespace tsh = tp::shallow;
namespace tsum = tp::sum;
namespace tutil = tp::util;

namespace {

/// Every test here mutates the global OpenMP team size; restore the
/// runtime default afterwards so test order can't matter.
class ThreadsTest : public ::testing::Test {
protected:
    void TearDown() override { tutil::set_threads(0); }
};

std::vector<double> reduction_workload(std::size_t n) {
    tp::util::Rng rng(1737);
    std::vector<double> xs(n);
    for (auto& v : xs)
        v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(0.0, 8.0));
    return xs;
}

}  // namespace

// ------------------------------------------------- parallel reductions
TEST_F(ThreadsTest, ParallelMinMaxMatchSerialGroundTruth) {
    // Sizes straddling the kReduceBlock boundary, including a ragged tail.
    for (const std::size_t n :
         {std::size_t{1}, tsum::kReduceBlock - 1, tsum::kReduceBlock,
          3 * tsum::kReduceBlock + 17}) {
        const auto xs = reduction_workload(n);
        const double lo = *std::min_element(xs.begin(), xs.end());
        const double hi = *std::max_element(xs.begin(), xs.end());
        const double inf = std::numeric_limits<double>::infinity();
        EXPECT_EQ(tsum::parallel_min(xs, inf), lo) << "n=" << n;
        EXPECT_EQ(tsum::parallel_max(xs, -inf), hi) << "n=" << n;
    }
}

TEST_F(ThreadsTest, ReductionsReturnIdentityOnEmptyInput) {
    const std::vector<double> none;
    EXPECT_EQ(tsum::parallel_min(none, 7.0), 7.0);
    EXPECT_EQ(tsum::parallel_max(none, -7.0), -7.0);
    EXPECT_EQ(tsum::parallel_sum_exact(none), 0.0);
}

TEST_F(ThreadsTest, ReductionsAreThreadCountInvariant) {
    // The tentpole contract: the same bits at every team size, including
    // team sizes that do not divide the input evenly.
    const auto xs = reduction_workload(5 * tsum::kReduceBlock + 311);
    const double inf = std::numeric_limits<double>::infinity();
    tutil::set_threads(1);
    const double min1 = tsum::parallel_min(xs, inf);
    const double max1 = tsum::parallel_max(xs, -inf);
    const double sum1 = tsum::parallel_sum_exact(xs);
    EXPECT_EQ(sum1, tsum::sum_exact(xs)) << "exact sum is correctly rounded";
    for (const int t : {2, 3, 5, 8}) {
        tutil::set_threads(t);
        EXPECT_EQ(tsum::parallel_min(xs, inf), min1) << "threads=" << t;
        EXPECT_EQ(tsum::parallel_max(xs, -inf), max1) << "threads=" << t;
        EXPECT_EQ(tsum::parallel_sum_exact(xs), sum1) << "threads=" << t;
    }
}

// ------------------------------------------- solver determinism (CLAMR)
namespace {

struct ShallowTrace {
    std::vector<double> dts;
    double mass = 0.0;
    std::vector<double> cut;
};

template <typename Policy>
ShallowTrace shallow_trace(int threads, int steps = 12) {
    tutil::set_threads(threads);
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 32, 32, 2};
    tsh::ShallowWaterSolver<Policy> s(cfg);
    s.initialize_dam_break({});
    ShallowTrace out;
    for (int k = 0; k < steps; ++k) out.dts.push_back(s.step());
    out.mass = s.total_mass();
    out.cut = s.sample_height_vertical(50.0, 33);
    return out;
}

}  // namespace

template <typename Policy>
class ShallowThreadDeterminism : public ThreadsTest {};

using AllPolicies =
    ::testing::Types<tf::MinimumPrecision, tf::MixedPrecision,
                     tf::FullPrecision, tf::HalfStoragePrecision>;
TYPED_TEST_SUITE(ShallowThreadDeterminism, AllPolicies);

TYPED_TEST(ShallowThreadDeterminism, StateBitwiseInvariantAcrossTeams) {
    // Per-cell updates are embarrassingly parallel and the two global
    // reductions (CFL min, mass sum) are thread-count-stable, so the full
    // physics — every dt, the final mass, a line-out through the wave —
    // must be bit-identical at any team size.
    const ShallowTrace base = shallow_trace<TypeParam>(1);
    for (const int t : {2, 4}) {
        const ShallowTrace got = shallow_trace<TypeParam>(t);
        EXPECT_EQ(got.dts, base.dts) << "threads=" << t;
        EXPECT_EQ(got.mass, base.mass) << "threads=" << t;
        EXPECT_EQ(got.cut, base.cut) << "threads=" << t;
    }
}

// -------------------------------------------- solver determinism (SELF)
namespace {

struct SemTrace {
    std::vector<double> dts;
    double mass = 0.0;
    std::vector<double> cut;
};

template <typename Policy>
SemTrace sem_trace(int threads, int steps = 3) {
    tutil::set_threads(threads);
    tp::sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 3;
    cfg.order = 4;
    tp::sem::SpectralEulerSolver<Policy> s(cfg);
    tp::sem::ThermalBubble bubble;
    s.initialize_thermal_bubble(bubble);
    SemTrace out;
    for (int k = 0; k < steps; ++k) out.dts.push_back(s.step());
    out.mass = s.total_mass_perturbation();
    out.cut = s.sample_density_anomaly_x(0.5 * cfg.ly, bubble.center_z, 65);
    return out;
}

}  // namespace

template <typename Policy>
class SemThreadDeterminism : public ThreadsTest {};

using SemPolicies = ::testing::Types<tf::MinimumPrecision,
                                     tf::MixedPrecision, tf::FullPrecision>;
TYPED_TEST_SUITE(SemThreadDeterminism, SemPolicies);

TYPED_TEST(SemThreadDeterminism, StateBitwiseInvariantAcrossTeams) {
    const SemTrace base = sem_trace<TypeParam>(1);
    for (const int t : {2, 4}) {
        const SemTrace got = sem_trace<TypeParam>(t);
        EXPECT_EQ(got.dts, base.dts) << "threads=" << t;
        EXPECT_EQ(got.mass, base.mass) << "threads=" << t;
        EXPECT_EQ(got.cut, base.cut) << "threads=" << t;
    }
}

// --------------------------------------------- accounting under threads
TEST_F(ThreadsTest, LedgerRecordsTeamSizeAndMergesWithMax) {
    tp::perf::WorkLedger a;
    a.record("finite_diff", 1.0, 100, 0, 800, 0, 0, 4);
    a.record("finite_diff", 1.0, 100, 0, 800, 0, 0, 2);  // later, smaller team
    const tp::perf::KernelWork* w = a.find("finite_diff");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->threads, 4u) << "threads is the largest team seen";
    EXPECT_EQ(w->invocations, 2u);

    tp::perf::WorkLedger b;
    b.record("finite_diff", 0.5, 50, 0, 400, 0, 0, 8);
    b.record("cfl", 0.1, 0, 10, 80);
    a.merge(b);
    w = a.find("finite_diff");
    EXPECT_EQ(w->threads, 8u);
    EXPECT_EQ(w->invocations, 3u);
    EXPECT_DOUBLE_EQ(w->seconds, 2.5);
    ASSERT_NE(a.find("cfl"), nullptr);
    EXPECT_EQ(a.find("cfl")->threads, 1u);
}

TEST_F(ThreadsTest, StopwatchRegistryMergeFoldsEntries) {
    tutil::StopwatchRegistry a, b;
    a.add("volume", 1.0);
    b.add("volume", 0.25);
    b.add("surface", 0.5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.total("volume"), 1.25);
    EXPECT_EQ(a.calls("volume"), 2u);
    EXPECT_DOUBLE_EQ(a.total("surface"), 0.5);
}

TEST_F(ThreadsTest, SolverLedgerReportsConfiguredTeam) {
    tutil::set_threads(2);
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 16, 16, 1};
    tsh::FullShallowSolver s(cfg);
    s.initialize_dam_break({});
    (void)s.step();
    const tp::perf::KernelWork* w = s.ledger().find("finite_diff");
    ASSERT_NE(w, nullptr);
    const auto want =
        static_cast<std::uint32_t>(tutil::openmp_enabled() ? 2 : 1);
    EXPECT_EQ(w->threads, want);
}

// ------------------------------------------------------------ CLI + env
TEST_F(ThreadsTest, ThreadsOptionAppliesAndReportsTeamSize) {
    tutil::ArgParser args("test", "threads option plumbing");
    tutil::add_threads_option(args);
    const char* argv[] = {"test", "--threads", "2"};
    ASSERT_TRUE(args.parse(3, argv));
    const int n = tutil::apply_threads_option(args);
    if (tutil::openmp_enabled()) {
        EXPECT_EQ(n, 2);
        EXPECT_EQ(tutil::max_threads(), 2);
    } else {
        EXPECT_EQ(n, 1);  // serial builds pin the team to one thread
    }
}

TEST_F(ThreadsTest, ThreadsOptionZeroKeepsRuntimeDefault) {
    const int before = tutil::max_threads();
    tutil::ArgParser args("test", "threads option default");
    tutil::add_threads_option(args);
    const char* argv[] = {"test"};
    ASSERT_TRUE(args.parse(1, argv));
    EXPECT_EQ(tutil::apply_threads_option(args), before);
    EXPECT_EQ(tutil::max_threads(), before);
}

TEST_F(ThreadsTest, SetThreadsZeroRestoresDefault) {
    const int def = tutil::max_threads();
    tutil::set_threads(3);
    if (tutil::openmp_enabled()) EXPECT_EQ(tutil::max_threads(), 3);
    tutil::set_threads(0);
    EXPECT_EQ(tutil::max_threads(), def);
    EXPECT_GE(tutil::hardware_threads(), 1);
}
