// Tests for the explicit-SIMD kernel layer (simd/pack.hpp), the scratch
// arena (util/arena.hpp), and the end-to-end guarantee the whole layer is
// built around: within one precision policy, the --simd=scalar and
// --simd=native paths produce bit-identical solutions, in both mini-apps.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fp/precision.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"
#include "simd/dispatch.hpp"
#include "simd/pack.hpp"
#include "util/arena.hpp"

namespace tsi = tp::simd;
namespace tu = tp::util;

// ------------------------------------------------------------------- packs

TEST(Pack, BroadcastLoadStoreRoundTrip) {
    constexpr int W = 8;
    std::array<double, W> in{};
    for (int i = 0; i < W; ++i) in[i] = 1.5 * i - 3.0;
    const auto p = tsi::pack<double, W>::load(in.data());
    std::array<double, W> out{};
    p.store(out.data());
    for (int i = 0; i < W; ++i) EXPECT_EQ(out[i], in[i]);

    const auto b = tsi::pack<double, W>::broadcast(2.25);
    for (int i = 0; i < W; ++i) EXPECT_EQ(b[i], 2.25);
}

TEST(Pack, GatherMatchesIndexedLoads) {
    constexpr int W = 4;
    std::vector<float> base(64);
    for (std::size_t i = 0; i < base.size(); ++i)
        base[i] = 0.25f * static_cast<float>(i);
    const std::int32_t idx[W] = {3, 17, 0, 42};
    const auto g = tsi::pack<float, W>::gather(base.data(), idx);
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(g[i], base[static_cast<std::size_t>(idx[i])]);

    // Partial gather replicates the last live index into the dead lanes.
    const auto gp = tsi::pack<float, W>::gather_partial(base.data(), idx, 2);
    EXPECT_EQ(gp[0], base[3]);
    EXPECT_EQ(gp[1], base[17]);
    EXPECT_EQ(gp[2], base[17]);
    EXPECT_EQ(gp[3], base[17]);
}

TEST(Pack, MaskedTailLoadAndStore) {
    constexpr int W = 8;
    std::array<double, W> in{};
    for (int i = 0; i < W; ++i) in[i] = i + 1.0;
    const auto p = tsi::pack<double, W>::load_partial(in.data(), 3);
    // Live lanes hold the data, dead lanes replicate lane m-1 (a valid
    // value, so later arithmetic cannot fault or produce NaN surprises).
    EXPECT_EQ(p[0], 1.0);
    EXPECT_EQ(p[1], 2.0);
    EXPECT_EQ(p[2], 3.0);
    for (int i = 3; i < W; ++i) EXPECT_EQ(p[i], 3.0);

    std::array<double, W> out{};
    out.fill(-7.0);
    p.store_partial(out.data(), 3);
    EXPECT_EQ(out[0], 1.0);
    EXPECT_EQ(out[1], 2.0);
    EXPECT_EQ(out[2], 3.0);
    for (int i = 3; i < W; ++i) EXPECT_EQ(out[i], -7.0);  // untouched
}

TEST(Pack, FmaMatchesStdFmaPerLane) {
    constexpr int W = 4;
    std::array<double, W> a{1.1, -2.2, 3.3, 4.4};
    std::array<double, W> b{0.5, 0.25, -0.125, 8.0};
    std::array<double, W> c{1e-3, 1e3, -1e-3, 0.0};
    const auto r = tsi::fma(tsi::pack<double, W>::load(a.data()),
                            tsi::pack<double, W>::load(b.data()),
                            tsi::pack<double, W>::load(c.data()));
    for (int i = 0; i < W; ++i) EXPECT_EQ(r[i], std::fma(a[i], b[i], c[i]));
}

TEST(Pack, ConvertMatchesScalarCast) {
    constexpr int W = 4;
    std::array<double, W> in{1.0 / 3.0, -2.0e7, 5.0e-8, 1.0};
    const auto f = tsi::pack<double, W>::load(in.data()).convert<float>();
    for (int i = 0; i < W; ++i) EXPECT_EQ(f[i], static_cast<float>(in[i]));
    const auto d = f.convert<double>();
    for (int i = 0; i < W; ++i)
        EXPECT_EQ(d[i], static_cast<double>(static_cast<float>(in[i])));
}

TEST(Pack, ScalarFallbackIsSameTemplate) {
    // W = 1 is the same code path the sem_scalar/flux_scalar TUs run.
    const auto p = tsi::pack<double, 1>::broadcast(3.5);
    const auto q = p * p + p;
    EXPECT_EQ(q[0], 3.5 * 3.5 + 3.5);
    EXPECT_EQ(tsi::reduce_add(q), q[0]);
}

TEST(Pack, ReduceAddIsFixedOrder) {
    constexpr int W = 8;
    std::array<double, W> in{1e16, 1.0, -1e16, 1.0, 0.5, 0.25, 0.125, 2.0};
    const auto p = tsi::pack<double, W>::load(in.data());
    double expect = 0.0;
    for (int i = 0; i < W; ++i) expect += in[i];  // same left-to-right order
    EXPECT_EQ(tsi::reduce_add(p), expect);
}

// ------------------------------------------------------------------- arena

TEST(ScratchArena, StopsAllocatingAfterWarmup) {
    tu::ScratchArena a(1u << 8);  // tiny: force spill blocks on round one
    for (int round = 0; round < 3; ++round) {
        double* x = a.alloc<double>(300);
        float* y = a.alloc<float>(700);
        x[0] = 1.0;
        y[0] = 2.0f;
        a.reset();
    }
    // After the first reset the spilled blocks coalesce into one, and
    // further rounds of the same footprint are pure pointer bumps.
    EXPECT_EQ(a.block_count(), 1u);
    const std::size_t peak = a.peak();
    double* x = a.alloc<double>(300);
    (void)x;
    float* y = a.alloc<float>(700);
    (void)y;
    EXPECT_EQ(a.block_count(), 1u);   // no new block
    EXPECT_EQ(a.peak(), peak);        // no new high-water mark
}

TEST(ScratchArena, AlignmentAndScopeRewind) {
    tu::ScratchArena a;
    double* x = a.alloc<double>(5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(x) %
                  tu::ScratchArena::kAlignment,
              0u);
    const std::size_t before = a.used();
    {
        tu::ArenaScope scope(a);
        float* y = a.alloc<float>(1000);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(y) %
                      tu::ScratchArena::kAlignment,
                  0u);
        EXPECT_GT(a.used(), before);
    }
    EXPECT_EQ(a.used(), before);  // LIFO rewind
}

// ----------------------------------------------- scalar/native equivalence

namespace {

template <typename P>
std::string clamr_bits(tsi::Mode mode, int levels, int rezone_interval = 4,
                       tp::shallow::RezoneMode rezone =
                           tp::shallow::RezoneMode::Incremental) {
    tp::shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, 24, 24, levels};
    cfg.simd = mode;
    cfg.rezone_interval = rezone_interval;
    cfg.rezone_mode = rezone;
    tp::shallow::ShallowWaterSolver<P> s(cfg);
    s.initialize_dam_break({});
    s.run(25);
    // Level-run invariants while we are here: runs tile [0, num_cells)
    // and never mix levels (the blocked flux sweep depends on this).
    std::size_t covered = 0;
    for (const auto& run : s.level_runs()) {
        EXPECT_EQ(static_cast<std::size_t>(run.begin), covered);
        EXPECT_LT(run.begin, run.end);
        covered = static_cast<std::size_t>(run.end);
    }
    EXPECT_EQ(covered, s.mesh().num_cells());
    std::ostringstream os(std::ios::binary);
    s.write_checkpoint(os);
    return std::move(os).str();
}

template <typename P>
std::string sem_bits(tsi::Mode mode, bool promote, double viscosity) {
    tp::sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 5;  // np = 6: hits a specialized micro-kernel + tails
    cfg.simd = mode;
    cfg.promote_each_op = promote;
    cfg.viscosity = viscosity;
    tp::sem::SpectralEulerSolver<P> s(cfg);
    s.initialize_thermal_bubble({});
    s.run(4);
    return s.state_fingerprint();
}

}  // namespace

TEST(SimdEquivalence, ClamrAllPoliciesBitIdentical) {
    EXPECT_EQ(clamr_bits<tp::fp::MinimumPrecision>(tsi::Mode::Scalar, 2),
              clamr_bits<tp::fp::MinimumPrecision>(tsi::Mode::Native, 2));
    EXPECT_EQ(clamr_bits<tp::fp::MixedPrecision>(tsi::Mode::Scalar, 2),
              clamr_bits<tp::fp::MixedPrecision>(tsi::Mode::Native, 2));
    EXPECT_EQ(clamr_bits<tp::fp::FullPrecision>(tsi::Mode::Scalar, 2),
              clamr_bits<tp::fp::FullPrecision>(tsi::Mode::Native, 2));
    // Uniform grid too (single level-run, no tail blocks at W | n).
    EXPECT_EQ(clamr_bits<tp::fp::FullPrecision>(tsi::Mode::Scalar, 1),
              clamr_bits<tp::fp::FullPrecision>(tsi::Mode::Native, 1));
}

// Rezone-heavy deep-refinement workload (max_level 4, adapt every other
// step): the incremental rezone pipeline must keep scalar/native and
// incremental/full all on the same bits for every policy.
TEST(SimdEquivalence, ClamrRezoneHeavyBitIdentical) {
    auto check = [&]<typename P>() {
        const std::string ref = clamr_bits<P>(tsi::Mode::Scalar, 4, 2);
        EXPECT_EQ(ref, clamr_bits<P>(tsi::Mode::Native, 4, 2));
        EXPECT_EQ(ref, clamr_bits<P>(tsi::Mode::Scalar, 4, 2,
                                     tp::shallow::RezoneMode::Full));
        EXPECT_EQ(ref, clamr_bits<P>(tsi::Mode::Native, 4, 2,
                                     tp::shallow::RezoneMode::Full));
    };
    check.template operator()<tp::fp::MinimumPrecision>();
    check.template operator()<tp::fp::MixedPrecision>();
    check.template operator()<tp::fp::FullPrecision>();
}

TEST(SimdEquivalence, SemBothPrecisionsBitIdentical) {
    EXPECT_EQ(sem_bits<tp::fp::MinimumPrecision>(tsi::Mode::Scalar, false, 0.0),
              sem_bits<tp::fp::MinimumPrecision>(tsi::Mode::Native, false, 0.0));
    EXPECT_EQ(sem_bits<tp::fp::FullPrecision>(tsi::Mode::Scalar, false, 0.0),
              sem_bits<tp::fp::FullPrecision>(tsi::Mode::Native, false, 0.0));
}

TEST(SimdEquivalence, SemPromotedFloatKernelBitIdentical) {
    // The Table IV "GNU model" swaps the kernel scalar for PromotedFloat;
    // the pack layer must stay bit-identical there as well.
    EXPECT_EQ(sem_bits<tp::fp::MinimumPrecision>(tsi::Mode::Scalar, true, 0.0),
              sem_bits<tp::fp::MinimumPrecision>(tsi::Mode::Native, true, 0.0));
}

TEST(SimdEquivalence, SemViscousPathBitIdentical) {
    // viscosity > 0 exercises the gradient micro-kernel and the BR1 face
    // corrections shared by both modes.
    EXPECT_EQ(sem_bits<tp::fp::FullPrecision>(tsi::Mode::Scalar, false, 1.0),
              sem_bits<tp::fp::FullPrecision>(tsi::Mode::Native, false, 1.0));
}

TEST(SimdEquivalence, AutoFollowsBuildConfiguration) {
#if defined(TP_SIMD_FORCE_SCALAR)
    EXPECT_FALSE(tsi::use_native(tsi::Mode::Auto));
#else
    EXPECT_TRUE(tsi::use_native(tsi::Mode::Auto));
#endif
    EXPECT_FALSE(tsi::use_native(tsi::Mode::Scalar));
    EXPECT_GE(tsi::native_lanes<float>, tsi::native_lanes<double>);
}
