#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/linecut.hpp"

namespace ta = tp::analysis;

namespace {

ta::LineCut make_cut(const std::string& label, int n,
                     double (*fn)(double)) {
    ta::LineCut c;
    c.label = label;
    for (int k = 0; k < n; ++k) {
        const double x = (k + 0.5) / n;
        c.position.push_back(x);
        c.value.push_back(fn(x));
    }
    return c;
}

}  // namespace

TEST(LineCut, FaceFreePositionsAvoidBoundaries) {
    const int fine = 128;
    const auto xs = ta::face_free_positions(0.0, 100.0, fine);
    ASSERT_EQ(xs.size(), 128u);
    const double dx = 100.0 / fine;
    for (const double x : xs) {
        // Distance to the nearest face is half a cell.
        const double r = std::fmod(x, dx);
        EXPECT_NEAR(r, dx / 2.0, 1e-9);
    }
    // Mirror-consistency: 100 - x_k is (close to) x_{n-1-k}.
    for (std::size_t k = 0; k < xs.size(); ++k)
        EXPECT_NEAR(100.0 - xs[k], xs[xs.size() - 1 - k], 1e-9);
}

TEST(LineCut, FaceFreeRejectsBadCount) {
    EXPECT_THROW((void)ta::face_free_positions(0.0, 1.0, 0),
                 std::invalid_argument);
}

TEST(LineCut, DifferenceIsPointwise) {
    const auto a = make_cut("a", 16, +[](double x) { return x * x; });
    const auto b = make_cut("b", 16, +[](double x) { return x; });
    const auto d = ta::difference(a, b);
    EXPECT_EQ(d.label, "a - b");
    for (std::size_t k = 0; k < d.size(); ++k)
        EXPECT_DOUBLE_EQ(d.value[k],
                         a.value[k] - b.value[k]);
}

TEST(LineCut, DifferenceSizeMismatchThrows) {
    const auto a = make_cut("a", 16, +[](double x) { return x; });
    const auto b = make_cut("b", 8, +[](double x) { return x; });
    EXPECT_THROW((void)ta::difference(a, b), std::invalid_argument);
}

TEST(LineCut, MirrorAsymmetryOfSymmetricIsZero) {
    // f(x) = (x - 1/2)^2 is symmetric about the center of [0, 1].
    const auto c =
        make_cut("sym", 64, +[](double x) { return (x - 0.5) * (x - 0.5); });
    const auto asym = ta::mirror_asymmetry(c);
    ASSERT_EQ(asym.size(), 32u);
    for (const double v : asym.value) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(LineCut, MirrorAsymmetryDetectsSkew) {
    const auto c = make_cut("skew", 64, +[](double x) { return x; });
    const auto asym = ta::mirror_asymmetry(c);
    // value(i) - value(n-1-i) = x_i - (1 - x_i) < 0 on the first half.
    for (const double v : asym.value) EXPECT_LT(v, 0.0);
}

TEST(LineCut, CompareMetrics) {
    const auto a = make_cut("a", 32, +[](double) { return 10.0; });
    auto b = a;
    b.value[5] += 1e-5;
    const auto m = ta::compare(a, b);
    EXPECT_NEAR(m.linf, 1e-5, 1e-12);
    EXPECT_NEAR(m.rel_linf, 1e-6, 1e-12);
}

TEST(LineCut, WriteCsvEmitsAllColumns) {
    const auto a = make_cut("full", 4, +[](double x) { return x; });
    const auto b = make_cut("min", 4, +[](double x) { return 2 * x; });
    const std::string path = "/tmp/tp_test_linecut.csv";
    const std::vector<ta::LineCut> cuts{a, b};
    ta::write_csv(path, cuts);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "position,full,min");
    int rows = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty()) ++rows;
    EXPECT_EQ(rows, 4);
    std::filesystem::remove(path);
}

TEST(LineCut, WriteCsvValidatesInput) {
    const std::vector<ta::LineCut> none;
    EXPECT_THROW((void)ta::write_csv("/tmp/x.csv", none),
                 std::invalid_argument);
    const auto a = make_cut("a", 4, +[](double x) { return x; });
    const auto b = make_cut("b", 5, +[](double x) { return x; });
    const std::vector<ta::LineCut> ragged{a, b};
    EXPECT_THROW((void)ta::write_csv("/tmp/x.csv", ragged),
                 std::invalid_argument);
}

TEST(LineCut, WriteCsvSanitizesCommaLabels) {
    auto a = make_cut("full, 64^2", 3, +[](double x) { return x; });
    const std::string path = "/tmp/tp_test_linecut3.csv";
    const std::vector<ta::LineCut> cuts{a};
    ta::write_csv(path, cuts);
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "position,full; 64^2");
    std::filesystem::remove(path);
}
