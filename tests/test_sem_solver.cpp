#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fp/metrics.hpp"
#include "sem/dgsem.hpp"

namespace tse = tp::sem;
namespace tf = tp::fp;

namespace {

tse::SemConfig tiny(int n = 3, int order = 4) {
    tse::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = n;
    cfg.order = order;
    return cfg;
}

}  // namespace

// -------------------------------------------------------------- atmosphere
TEST(Atmosphere, HydrostaticRelationsConsistent) {
    const tse::Atmosphere atm;
    EXPECT_NEAR(atm.pressure(0.0), atm.p0, 1e-9);
    EXPECT_NEAR(atm.temperature(0.0), atm.theta0, 1e-12);
    // dp/dz = -rho g (finite-difference check at several heights).
    for (const double z : {100.0, 400.0, 800.0}) {
        const double h = 0.01;
        const double dpdz =
            (atm.pressure(z + h) - atm.pressure(z - h)) / (2 * h);
        EXPECT_NEAR(dpdz, -atm.density(z) * atm.gravity,
                    1e-6 * atm.p0 / 100.0);
    }
    // Warmer air is lighter.
    EXPECT_LT(atm.density_at_theta(350.0, 0.5), atm.density(350.0));
    EXPECT_DOUBLE_EQ(atm.density_at_theta(350.0, 0.0), atm.density(350.0));
    // Sound speed ~ 347 m/s at 300 K.
    EXPECT_NEAR(atm.sound_speed(0.0), 347.2, 0.5);
}

// ---------------------------------------------------------------- balance
template <typename Policy>
class SemPolicyTest : public ::testing::Test {};

using Policies = ::testing::Types<tf::MinimumPrecision, tf::MixedPrecision,
                                  tf::FullPrecision>;
TYPED_TEST_SUITE(SemPolicyTest, Policies);

TYPED_TEST(SemPolicyTest, HydrostaticBaseStatePreserved) {
    // Well-balanced property: zero perturbation must stay (near) zero.
    tse::SpectralEulerSolver<TypeParam> s(tiny());
    tse::ThermalBubble none;
    none.dtheta = 0.0;
    s.initialize_thermal_bubble(none);
    s.run(5);
    const double scale = s.config().atm.density(0.0);
    // The base state itself is stored in storage_t, so float storage
    // bounds the achievable balance regardless of compute precision.
    const double tol =
        sizeof(typename TypeParam::storage_t) == 4 ? 1e-5 : 1e-12;
    EXPECT_LT(s.max_abs(tse::RHO) / scale, tol);
}

TYPED_TEST(SemPolicyTest, MassPerturbationConserved) {
    tse::SpectralEulerSolver<TypeParam> s(tiny());
    s.initialize_thermal_bubble({});
    const double m0 = s.total_mass_perturbation();
    ASSERT_NE(m0, 0.0);
    s.run(10);
    const double m1 = s.total_mass_perturbation();
    const double tol =
        sizeof(typename TypeParam::storage_t) == 4 ? 2e-4 : 1e-10;
    EXPECT_NEAR(m1 / m0, 1.0, tol);
}

TYPED_TEST(SemPolicyTest, BubbleBeginsToRise) {
    // Buoyancy check: after some steps the bubble region gains upward
    // momentum (m_z > 0 somewhere) and total |m_z| grows from zero.
    tse::SpectralEulerSolver<TypeParam> s(tiny());
    s.initialize_thermal_bubble({});
    EXPECT_EQ(s.max_abs(tse::MZ), 0.0);
    s.run(10);
    EXPECT_GT(s.max_abs(tse::MZ), 0.0);
    // The density anomaly stays negative (warm air lighter) at center.
    const double rc =
        s.interpolate(tse::RHO, 500.0, 500.0, 350.0);
    EXPECT_LT(rc, 0.0);
}

// --------------------------------------------------------------- precision
TEST(SemSolver, SingleAndDoubleAgreeClosely) {
    // Figure 4's result: SP and DP line-outs are visually identical with
    // differences orders of magnitude below the anomaly.
    tse::SingleSemSolver ss(tiny());
    tse::DoubleSemSolver sd(tiny());
    ss.initialize_thermal_bubble({});
    sd.initialize_thermal_bubble({});
    ss.run(15);
    sd.run(15);
    const auto a = sd.sample_density_anomaly_x(500.0, 350.0, 65);
    const auto b = ss.sample_density_anomaly_x(500.0, 350.0, 65);
    const auto m = tf::compare(a, b);
    EXPECT_GT(m.digits_of_agreement(), 3.0);
}

TEST(SemSolver, PromotedKernelMatchesNativeSingle) {
    // The "GNU model" changes instruction shape, not results: values match
    // native single precision to a tight tolerance (double-rounding only).
    auto cfg = tiny();
    tse::SingleSemSolver native(cfg);
    cfg.promote_each_op = true;
    tse::SingleSemSolver promoted(cfg);
    native.initialize_thermal_bubble({});
    promoted.initialize_thermal_bubble({});
    native.run(5);
    promoted.run(5);
    const auto a = native.sample_density_anomaly_x(500.0, 350.0, 33);
    const auto b = promoted.sample_density_anomaly_x(500.0, 350.0, 33);
    const auto m = tf::compare(a, b);
    EXPECT_GT(m.digits_of_agreement(), 4.0);
}

TEST(SemSolver, StateBytesScaleWithPrecision) {
    tse::SingleSemSolver ss(tiny());
    tse::DoubleSemSolver sd(tiny());
    EXPECT_LT(ss.state_bytes(), sd.state_bytes());
    EXPECT_EQ(ss.snapshot_bytes() * 2, sd.snapshot_bytes() + 64);
}

// ------------------------------------------------------------- diagnostics
TEST(SemSolver, LedgerCoversAllKernels) {
    tse::DoubleSemSolver s(tiny(2, 3));
    s.initialize_thermal_bubble({});
    s.run(3);
    for (const char* k : {"volume", "surface", "rk_update", "cfl", "filter"}) {
        const auto* w = s.ledger().find(k);
        ASSERT_NE(w, nullptr) << k;
        EXPECT_GT(w->invocations, 0u) << k;
        EXPECT_GT(w->bytes, 0u) << k;
    }
    // 3 RK stages per step -> volume runs 3x per step.
    EXPECT_EQ(s.ledger().find("volume")->invocations, 9u);
    EXPECT_EQ(s.ledger().find("cfl")->invocations, 3u);
}

TEST(SemSolver, DofCountMatchesConfig) {
    tse::DoubleSemSolver s(tiny(3, 4));
    EXPECT_EQ(s.num_nodes(), 27u * 125u);
    EXPECT_EQ(s.degrees_of_freedom(), 27u * 125u * 5u);
}

TEST(SemSolver, PaperScaleDofFormula) {
    // The paper's run: 20^3 elements x 8^3 points ~ 24.6M "degrees of
    // freedom" counting nodes x variables / ... (they quote ~24M for the
    // grid). Verify our accounting reproduces the quoted magnitude.
    tse::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 20;
    cfg.order = 7;
    const std::size_t nodes = 20u * 20u * 20u * 8u * 8u * 8u;
    EXPECT_EQ(nodes, 4096000u);  // 4.1M nodes -> 20.5M DOF over 5 fields
    (void)cfg;
}

TEST(SemSolver, InterpolateRejectsBadVariable) {
    tse::DoubleSemSolver s(tiny(2, 2));
    s.initialize_thermal_bubble({});
    EXPECT_THROW((void)s.interpolate(-1, 1.0, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW((void)s.interpolate(5, 1.0, 1.0, 1.0),
                 std::invalid_argument);
}

TEST(SemSolver, InterpolationMatchesNodeValues) {
    tse::DoubleSemSolver s(tiny(2, 3));
    s.initialize_thermal_bubble({});
    // Sampling the initial condition at the bubble center returns (close
    // to) the analytic anomaly there.
    const auto& atm = s.config().atm;
    const double want =
        atm.density_at_theta(350.0, 0.5) - atm.density(350.0);
    const double got = s.interpolate(tse::RHO, 500.0, 500.0, 350.0);
    EXPECT_NEAR(got, want, std::fabs(want) * 0.05);
}

TEST(SemSolver, RejectsBadConfig) {
    tse::SemConfig bad = tiny();
    bad.nx = 0;
    EXPECT_THROW(tse::DoubleSemSolver{bad}, std::invalid_argument);
    bad = tiny();
    bad.order = 0;
    EXPECT_THROW(tse::DoubleSemSolver{bad}, std::invalid_argument);
}

TEST(SemSolver, TimestepPositiveAndStable) {
    tse::DoubleSemSolver s(tiny(2, 4));
    s.initialize_thermal_bubble({});
    const double dt = s.step();
    EXPECT_GT(dt, 0.0);
    // ~ C * dx_node / c_sound: dx_elem = 500, node gap factor for N=4.
    EXPECT_LT(dt, 1.0);
    // No blow-up over more steps.
    s.run(10);
    EXPECT_LT(s.max_abs(tse::RHO), 1.0);
    EXPECT_TRUE(std::isfinite(s.max_abs(tse::MZ)));
}

// ----------------------------------------------------------- viscous terms
namespace {

/// Taylor-Green vortex in the (x,z) plane, tangential at every free-slip
/// wall, over the hydrostatic base state. Each velocity component obeys the
/// diffusion equation with k^2 = (pi/Lx)^2 + (pi/Lz)^2, so kinetic energy
/// decays as exp(-2 nu k^2 t) — an analytic target for the BR1 terms.
tse::SemConfig tg_config(double viscosity) {
    tse::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 5;
    cfg.lx = cfg.ly = cfg.lz = 100.0;
    cfg.viscosity = viscosity;
    cfg.filter_interval = 0;  // isolate physical dissipation
    return cfg;
}

template <typename Solver>
void init_taylor_green(Solver& s, double u0) {
    const auto& cfg = s.config();
    const double lx = cfg.lx, lz = cfg.lz;
    const tse::Atmosphere atm = cfg.atm;
    s.initialize_custom([&](double x, double, double z, double* q) {
        const double rho = atm.density(z);
        const double u =
            u0 * std::sin(std::numbers::pi * x / lx) *
            std::cos(std::numbers::pi * z / lz);
        const double w =
            -u0 * (lz / lx) * std::cos(std::numbers::pi * x / lx) *
            std::sin(std::numbers::pi * z / lz);
        q[0] = 0.0;            // rho'
        q[1] = rho * u;        // m_x
        q[2] = 0.0;            // m_y
        q[3] = rho * w;        // m_z
        // Keep pressure (hence temperature) unperturbed: E' = kinetic part.
        q[4] = 0.5 * rho * (u * u + w * w);
    });
}

}  // namespace

TEST(SemViscous, TaylorGreenDecayMatchesAnalyticRate) {
    const double nu = 72.0;             // kinematic, m^2/s
    const double rho0 = tse::Atmosphere{}.density(50.0);  // mid-domain
    auto cfg = tg_config(nu * rho0);    // config takes dynamic viscosity
    tse::DoubleSemSolver s(cfg);
    init_taylor_green(s, 0.05);
    const double ke0 = s.kinetic_energy();
    ASSERT_GT(ke0, 0.0);
    s.run(60);
    const double k2 = 2.0 * std::numbers::pi * std::numbers::pi /
                      (cfg.lx * cfg.lx);
    const double expected = std::exp(-2.0 * nu * k2 * s.time());
    const double got = s.kinetic_energy() / ke0;
    EXPECT_NEAR(got, expected, 0.05 * expected)
        << "t=" << s.time() << " expected " << expected << " got " << got;
}

TEST(SemViscous, InviscidRunConservesKineticEnergyFarBetter) {
    auto cfg = tg_config(0.0);
    tse::DoubleSemSolver inviscid(cfg);
    init_taylor_green(inviscid, 0.05);
    const double ke0 = inviscid.kinetic_energy();
    inviscid.run(60);
    const double inviscid_loss =
        1.0 - inviscid.kinetic_energy() / ke0;

    const double rho0 = tse::Atmosphere{}.density(50.0);
    auto vcfg = tg_config(72.0 * rho0);
    tse::DoubleSemSolver viscous(vcfg);
    init_taylor_green(viscous, 0.05);
    viscous.run(60);
    const double viscous_loss = 1.0 - viscous.kinetic_energy() / ke0;

    EXPECT_LT(std::fabs(inviscid_loss), 0.02);
    EXPECT_GT(viscous_loss, 5.0 * std::fabs(inviscid_loss));
}

TEST(SemViscous, HydrostaticBalancePreservedWithViscosity) {
    // The base state has zero velocity and a linear temperature profile;
    // both stress and heat-flux divergence vanish, so balance must hold.
    auto cfg = tg_config(50.0);
    tse::DoubleSemSolver s(cfg);
    tse::ThermalBubble none;
    none.dtheta = 0.0;
    s.initialize_thermal_bubble(none);
    s.run(5);
    EXPECT_LT(s.max_abs(tse::RHO) / cfg.atm.density(0.0), 1e-10);
}

TEST(SemViscous, MassConservedWithViscosity) {
    const double rho0 = tse::Atmosphere{}.density(50.0);
    auto cfg = tg_config(72.0 * rho0);
    tse::DoubleSemSolver s(cfg);
    init_taylor_green(s, 0.05);
    const double m0 = s.total_mass_perturbation();
    s.run(30);
    // Viscous fluxes carry no mass; the integral of rho' stays put.
    EXPECT_NEAR(s.total_mass_perturbation() - m0, 0.0, 1e-8);
}

TEST(SemViscous, LedgerRecordsViscousKernels) {
    auto cfg = tg_config(10.0);
    tse::DoubleSemSolver s(cfg);
    init_taylor_green(s, 0.05);
    s.run(2);
    ASSERT_NE(s.ledger().find("gradient"), nullptr);
    ASSERT_NE(s.ledger().find("viscous"), nullptr);
    EXPECT_EQ(s.ledger().find("gradient")->invocations, 6u);  // 3 stages x 2
}

TEST(SemViscous, SinglePrecisionDecayTracksDouble) {
    const double rho0 = tse::Atmosphere{}.density(50.0);
    auto cfg = tg_config(72.0 * rho0);
    tse::DoubleSemSolver sd(cfg);
    tse::SingleSemSolver ss(cfg);
    init_taylor_green(sd, 0.05);
    init_taylor_green(ss, 0.05);
    const double ke0 = sd.kinetic_energy();
    sd.run(30);
    ss.run(30);
    EXPECT_NEAR(ss.kinetic_energy() / ke0, sd.kinetic_energy() / ke0,
                1e-3);
}

// ------------------------------------------------- spectral convergence
namespace {

/// Standing acoustic wave in a gravity-free uniform medium:
///   p'(x,t) = A cos(kx) cos(ckt),  u(x,t) = (A/(rho c)) sin(kx) sin(ckt)
/// with k = pi/Lx, which satisfies the wall conditions u(0)=u(L)=0. After
/// half a period the pressure field is exactly negated — an analytic
/// target for measuring the discretization error as a function of order.
double acoustic_halfperiod_error(int order) {
    tse::SemConfig cfg;
    cfg.nx = 2;
    cfg.ny = cfg.nz = 1;
    cfg.order = order;
    cfg.lx = cfg.ly = cfg.lz = 100.0;
    cfg.atm.gravity = 0.0;          // uniform background
    cfg.filter_interval = 0;        // measure the scheme, not the filter
    cfg.courant = 0.15;             // keep RK3 time error subdominant

    const double c = cfg.atm.sound_speed(0.0);
    const double k = std::numbers::pi / cfg.lx;
    const double amp = 10.0;        // Pa, linear regime vs p0 = 1e5
    const double gamma = cfg.atm.gamma;

    tse::DoubleSemSolver s(cfg);
    s.initialize_custom([&](double x, double, double, double* q) {
        const double p = amp * std::cos(k * x);
        q[0] = p / (c * c);          // rho' for an isentropic disturbance
        q[4] = p / (gamma - 1.0);    // E' (velocity zero)
    });

    const double t_end = std::numbers::pi / (c * k);  // half period
    while (s.time() < t_end) s.step();
    // Land exactly on t_end is impossible with CFL stepping; evaluate the
    // analytic solution at the time actually reached instead.
    const double phase = std::cos(c * k * s.time());

    double linf = 0.0;
    for (int i = 0; i < 33; ++i) {
        const double x = (i + 0.5) * cfg.lx / 33.0;
        const double want = phase * amp * std::cos(k * x) / (c * c);
        const double got = s.interpolate(tse::RHO, x, 50.0, 50.0);
        linf = std::max(linf, std::fabs(got - want));
    }
    return linf * (c * c) / amp;  // relative to the wave amplitude
}

}  // namespace

TEST(SemConvergence, AcousticWaveErrorFallsWithOrder) {
    const double e2 = acoustic_halfperiod_error(2);
    const double e4 = acoustic_halfperiod_error(4);
    const double e6 = acoustic_halfperiod_error(6);
    // Spectral-type convergence: each +2 in order buys well over an order
    // of magnitude on this smooth solution.
    EXPECT_LT(e4, e2 / 10.0) << "e2=" << e2 << " e4=" << e4;
    EXPECT_LT(e6, e4 / 2.0) << "e4=" << e4 << " e6=" << e6;
    EXPECT_LT(e6, 2e-4);
    EXPECT_GT(e2, 1e-4);  // coarse order genuinely worse
}

// --------------------------------------------------- more solver behavior
TEST(SemSolver, BubbleRiseHeightAgreesAcrossPrecisions) {
    // Physics-level agreement: track the height of the density-anomaly
    // minimum (the bubble core) after the same number of steps.
    auto locate_core = [](auto& s) {
        double best_z = 0.0, best_v = 0.0;
        for (int k = 0; k < 64; ++k) {
            const double z = (k + 0.5) * 1000.0 / 64.0;
            const double v = s.interpolate(tse::RHO, 500.0, 500.0, z);
            if (v < best_v) {
                best_v = v;
                best_z = z;
            }
        }
        return best_z;
    };
    tse::SingleSemSolver ss(tiny(3, 5));
    tse::DoubleSemSolver sd(tiny(3, 5));
    ss.initialize_thermal_bubble({});
    sd.initialize_thermal_bubble({});
    ss.run(30);
    sd.run(30);
    EXPECT_EQ(locate_core(ss), locate_core(sd));  // same sampled bin
}

TEST(SemSolver, MixedPolicyRunsAndTracksFull) {
    // The paper notes SELF "does not have a mixed-precision option
    // currently" — this repo's templated solver provides one.
    tse::MixedSemSolver sm(tiny());
    tse::DoubleSemSolver sd(tiny());
    sm.initialize_thermal_bubble({});
    sd.initialize_thermal_bubble({});
    sm.run(10);
    sd.run(10);
    const auto a = sd.sample_density_anomaly_x(500.0, 350.0, 33);
    const auto b = sm.sample_density_anomaly_x(500.0, 350.0, 33);
    EXPECT_GT(tf::compare(a, b).digits_of_agreement(), 3.0);
}

TEST(SemSolver, FilterRemovesTopModeInOneStep) {
    // The sharp (exponent-16) exponential filter leaves resolved modes
    // essentially untouched and annihilates the top Legendre mode
    // (sigma(N) = exp(-36) ~ 2e-16). Seed exactly that mode per element
    // and compare one filtered step against one unfiltered step.
    auto one_step = [](tse::SemConfig cfg) {
        const double de = cfg.lx / cfg.nx;
        const int order = cfg.order;
        tse::DoubleSemSolver s(cfg);
        s.initialize_custom([&](double x, double, double, double* q) {
            const double xi =
                2.0 * std::fmod(x, de) / de - 1.0;  // element coordinate
            q[1] = 0.01 * tse::legendre(order, xi).value;
        });
        s.run(1);
        return s.kinetic_energy();
    };
    auto cfg = tiny(2, 6);
    cfg.filter_interval = 1;
    const double filtered = one_step(cfg);
    cfg.filter_interval = 0;
    const double unfiltered = one_step(cfg);
    EXPECT_LT(filtered, 0.05 * unfiltered);
}

TEST(SemSolver, SamplePositionsCoverDomain) {
    tse::DoubleSemSolver s(tiny(2, 3));
    const auto xs = s.sample_positions_x(16);
    ASSERT_EQ(xs.size(), 16u);
    EXPECT_GT(xs.front(), 0.0);
    EXPECT_LT(xs.back(), s.config().lx);
    for (std::size_t k = 1; k < xs.size(); ++k)
        EXPECT_GT(xs[k], xs[k - 1]);
}

TEST(SemSolver, TotalMassPerturbationNegativeForWarmBubble) {
    tse::DoubleSemSolver s(tiny(2, 4));
    s.initialize_thermal_bubble({});
    EXPECT_LT(s.total_mass_perturbation(), 0.0);  // warm air is lighter
}
