#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "sum/basic.hpp"
#include "sum/expansion.hpp"
#include "sum/reproducible.hpp"
#include "fp/ulp.hpp"
#include "sum/twosum.hpp"
#include "util/rng.hpp"

namespace ts = tp::sum;

namespace {

/// Ill-conditioned test data: values spanning many magnitudes with heavy
/// cancellation, plus the exact sum computed by construction.
struct Workload {
    std::vector<double> values;
    double exact;
};

Workload make_workload(std::uint64_t seed, std::size_t n, double spread) {
    tp::util::Rng rng(seed);
    Workload w;
    w.values.reserve(2 * n + 1);
    ts::ExpansionAccumulator acc;
    for (std::size_t i = 0; i < n; ++i) {
        const double mag = std::exp(rng.uniform(0.0, spread));
        const double v = rng.uniform(-1.0, 1.0) * mag;
        // Insert v and -v plus a small unique epsilon so cancellation is
        // severe but the exact total is nontrivial.
        const double eps = rng.uniform(-1e-9, 1e-9);
        w.values.push_back(v);
        w.values.push_back(-v + eps);
        acc.add(v);
        acc.add(-v + eps);
    }
    w.values.push_back(1.0);
    acc.add(1.0);
    w.exact = acc.round();
    return w;
}

double rel_err(double got, double want) {
    return std::fabs(got - want) / std::max(std::fabs(want), 1e-300);
}

}  // namespace

// ----------------------------------------------------------------- two_sum
TEST(TwoSum, ErrorTermIsExact) {
    const auto [s, e] = ts::two_sum(1.0, 1e-20);
    EXPECT_DOUBLE_EQ(s, 1.0);
    EXPECT_DOUBLE_EQ(e, 1e-20);  // the lost low part is recovered exactly
}

TEST(TwoSum, FastTwoSumRecoversDroppedLowPart) {
    // 1.25e-7 is far below ulp(1e10)/2, so the rounded sum is exactly 1e10
    // and the error term carries the entire small addend.
    const auto [s, e] = ts::fast_two_sum(1e10, 1.25e-7);
    EXPECT_DOUBLE_EQ(s, 1e10);
    EXPECT_DOUBLE_EQ(e, 1.25e-7);
}

TEST(TwoSum, TwoProductRecoversError) {
    const double a = 1.0 + 0x1.0p-30;
    const double b = 1.0 - 0x1.0p-30;
    const auto [p, e] = ts::two_product(a, b);
    // a*b = 1 - 2^-60 exactly; p rounds to 1, e = -2^-60.
    EXPECT_DOUBLE_EQ(p, 1.0);
    EXPECT_DOUBLE_EQ(e, -0x1.0p-60);
}

// --------------------------------------------------------- accuracy ladder
class SumAccuracy : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(SumAccuracy, LadderOrdering) {
    const auto [seed, spread] = GetParam();
    const auto w = make_workload(static_cast<std::uint64_t>(seed), 5000,
                                 spread);
    const std::span<const double> xs(w.values);

    const double naive = ts::sum_naive(xs);
    const double pairwise = ts::sum_pairwise(xs);
    const double kahan = ts::sum_kahan(xs);
    const double neumaier = ts::sum_neumaier(xs);
    const double exact = ts::sum_exact(xs);

    // Exact summation is exact.
    EXPECT_EQ(exact, w.exact);
    // Neumaier is within a few ulps of exact even under cancellation.
    EXPECT_LE(rel_err(neumaier, w.exact), 1e-12);
    // Naive and pairwise stay within loose conditioning-driven bounds.
    // (This workload interleaves +-v pairs, which happens to favor naive's
    // running cancellation, so no per-instance ordering is asserted here;
    // see PairwiseBeatsNaiveOnUniformData for the ordering property.)
    EXPECT_LE(rel_err(pairwise, w.exact), 1e-3);
    EXPECT_LE(rel_err(kahan, w.exact), 1e-3);
    EXPECT_LE(rel_err(naive, w.exact), 1e-1);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSpreads, SumAccuracy,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(5.0, 15.0, 25.0)));

TEST(SumBasic, EmptyAndSingle) {
    const std::vector<double> empty;
    const std::vector<double> one{3.5};
    EXPECT_EQ(ts::sum_naive<double>(empty), 0.0);
    EXPECT_EQ(ts::sum_kahan<double>(empty), 0.0);
    EXPECT_EQ(ts::sum_neumaier<double>(empty), 0.0);
    EXPECT_EQ(ts::sum_pairwise<double>(empty), 0.0);
    EXPECT_EQ(ts::sum_pairwise<double>(one), 3.5);
    EXPECT_EQ(ts::sum_exact(one), 3.5);
}

TEST(SumBasic, PairwiseBeatsNaiveOnUniformData) {
    // Summing n copies of an inexact constant: naive error grows ~n, the
    // fixed pairwise tree only ~log n.
    const std::vector<double> xs(1 << 20, 0.1);
    const double exact = ts::sum_exact(xs);
    const double e_naive = std::fabs(ts::sum_naive<double>(xs) - exact);
    const double e_pair = std::fabs(ts::sum_pairwise<double>(xs) - exact);
    EXPECT_LT(e_pair, e_naive / 10.0);
}

TEST(SumBasic, KahanBeatsNaiveOnClassicCase) {
    // 1 followed by many tiny values naive summation drops entirely.
    std::vector<double> xs{1.0};
    xs.insert(xs.end(), 1000000, 1e-17);
    const double want = 1.0 + 1e-11;
    EXPECT_EQ(ts::sum_naive<double>(xs), 1.0);  // all tinies lost
    EXPECT_NEAR(ts::sum_kahan<double>(xs), want, 1e-24);
    EXPECT_NEAR(ts::sum_neumaier<double>(xs), want, 1e-24);
}

TEST(SumBasic, NeumaierHandlesLargeAddendAfterSmall) {
    // Kahan's weakness: compensation lost when the addend dwarfs the sum.
    const std::vector<double> xs{1.0, 1e100, 1.0, -1e100};
    EXPECT_EQ(ts::sum_neumaier<double>(xs), 2.0);
    EXPECT_EQ(ts::sum_exact(xs), 2.0);
}

TEST(SumBasic, CompensatedDot) {
    std::vector<double> a{1e8, 1.0, -1e8};
    std::vector<double> b{1e8, 1.0, 1e8};
    // a.b = 1e16 + 1 - 1e16 = 1.
    EXPECT_DOUBLE_EQ(ts::dot_compensated<double>(a, b), 1.0);
}

// --------------------------------------------------------------- expansion
TEST(Expansion, ExactUnderPermutation) {
    const auto w = make_workload(7, 2000, 20.0);
    ts::ExpansionAccumulator fwd, rev, shuffled;
    fwd.add(std::span<const double>(w.values));

    std::vector<double> r(w.values.rbegin(), w.values.rend());
    rev.add(std::span<const double>(r));

    std::vector<double> s = w.values;
    tp::util::Rng rng(99);
    for (std::size_t i = s.size(); i > 1; --i)
        std::swap(s[i - 1], s[rng.next_below(i)]);
    shuffled.add(std::span<const double>(s));

    EXPECT_TRUE(fwd.exactly_equals(rev));
    EXPECT_TRUE(fwd.exactly_equals(shuffled));
    EXPECT_EQ(fwd.round(), rev.round());
    EXPECT_EQ(fwd.round(), shuffled.round());
}

TEST(Expansion, MergeEqualsFlat) {
    const auto w = make_workload(13, 1000, 10.0);
    ts::ExpansionAccumulator flat, a, b;
    flat.add(std::span<const double>(w.values));
    const std::size_t half = w.values.size() / 2;
    a.add(std::span<const double>(w.values.data(), half));
    b.add(std::span<const double>(w.values.data() + half,
                                  w.values.size() - half));
    a.add(b);
    EXPECT_TRUE(flat.exactly_equals(a));
}

TEST(Expansion, CancellationToExactZero) {
    ts::ExpansionAccumulator acc;
    tp::util::Rng rng(3);
    std::vector<double> vals;
    for (int i = 0; i < 500; ++i)
        vals.push_back(rng.uniform(-1e10, 1e10));
    for (const double v : vals) acc.add(v);
    for (const double v : vals) acc.add(-v);
    EXPECT_EQ(acc.round(), 0.0);
    ts::ExpansionAccumulator zero;
    EXPECT_TRUE(acc.exactly_equals(zero));
}

TEST(Expansion, HoldsMoreThanDoublePrecision) {
    ts::ExpansionAccumulator acc;
    acc.add(1.0);
    acc.add(1e-30);
    acc.add(-1.0);
    EXPECT_EQ(acc.round(), 1e-30);  // survives the cancellation exactly
}

TEST(Expansion, ClearResets) {
    ts::ExpansionAccumulator acc;
    acc.add(5.0);
    acc.clear();
    EXPECT_EQ(acc.round(), 0.0);
    EXPECT_TRUE(acc.components().empty());
}

// ------------------------------------------------------------ reproducible
class Reproducible : public ::testing::TestWithParam<int> {};

TEST_P(Reproducible, OrderIndependentToTheBit) {
    const auto w = make_workload(static_cast<std::uint64_t>(GetParam()),
                                 4000, 18.0);
    const double a =
        ts::sum_reproducible<double>(w.values).value;

    std::vector<double> perm = w.values;
    tp::util::Rng rng(1234);
    for (std::size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.next_below(i)]);
    const double b = ts::sum_reproducible<double>(perm).value;
    EXPECT_EQ(a, b);  // bitwise

    std::sort(perm.begin(), perm.end());
    const double c = ts::sum_reproducible<double>(perm).value;
    EXPECT_EQ(a, c);
}

TEST_P(Reproducible, AccurateVsExact) {
    const auto w = make_workload(static_cast<std::uint64_t>(GetParam()) + 50,
                                 4000, 12.0);
    const auto r = ts::sum_reproducible<double>(w.values);
    // 3-fold extraction: error far below naive; compare against max|x|*n
    // scaled conditioning.
    double maxabs = 0;
    for (double v : w.values) maxabs = std::max(maxabs, std::fabs(v));
    const double bound = maxabs * static_cast<double>(w.values.size()) *
                         1e-24;  // comfortably below eps of the scale
    EXPECT_LE(std::fabs(r.value - w.exact), std::max(bound, 1e-300))
        << "value=" << r.value << " exact=" << w.exact;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Reproducible,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(Reproducible, NaiveIsNotOrderIndependent) {
    // Motivation check: the same data summed in two orders differs for
    // naive summation — the problem §III.C's techniques remove.
    const auto w = make_workload(21, 4000, 18.0);
    std::vector<double> sorted = w.values;
    std::sort(sorted.begin(), sorted.end());
    const double a = ts::sum_naive<double>(w.values);
    const double b = ts::sum_naive<double>(sorted);
    EXPECT_NE(a, b);
}

TEST(Reproducible, EdgeCases) {
    const std::vector<double> empty;
    EXPECT_EQ(ts::sum_reproducible<double>(empty).value, 0.0);
    const std::vector<double> zeros(100, 0.0);
    EXPECT_EQ(ts::sum_reproducible<double>(zeros).value, 0.0);
    const std::vector<double> one{42.0};
    EXPECT_EQ(ts::sum_reproducible<double>(one).value, 42.0);
}

TEST(Reproducible, WorksInSinglePrecision) {
    std::vector<float> xs;
    tp::util::Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        xs.push_back(static_cast<float>(rng.uniform(-100.0, 100.0)));
    const float a = ts::sum_reproducible<float>(xs).value;
    std::vector<float> rev(xs.rbegin(), xs.rend());
    const float b = ts::sum_reproducible<float>(rev).value;
    EXPECT_EQ(a, b);
    // Accuracy: compare against double reference.
    double ref = 0;
    for (float v : xs) ref += static_cast<double>(v);
    EXPECT_NEAR(static_cast<double>(a), ref, 1e-2);
}

// ------------------------------------------------------------- tree reduce
TEST(TreeReduce, MinMaxChunkInvariant) {
    tp::util::Rng rng(31);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(-1e6, 1e6));
    const double mn = ts::global_min<double>(xs, 1e300);
    const double mx = ts::global_max<double>(xs, -1e300);
    EXPECT_EQ(mn, *std::min_element(xs.begin(), xs.end()));
    EXPECT_EQ(mx, *std::max_element(xs.begin(), xs.end()));
}

TEST(TreeReduce, EmptyReturnsIdentity) {
    const std::vector<double> empty;
    EXPECT_EQ(ts::global_min<double>(empty, 7.0), 7.0);
}

TEST(TreeReduce, FixedShapeSumIsDeterministic) {
    tp::util::Rng rng(37);
    std::vector<double> xs;
    for (int i = 0; i < 4097; ++i) xs.push_back(rng.uniform(-1.0, 1.0));
    const auto plus = [](double a, double b) { return a + b; };
    const double a = ts::tree_reduce<double>(xs, 0.0, plus);
    const double b = ts::tree_reduce<double>(xs, 0.0, plus);
    EXPECT_EQ(a, b);
}

// ------------------------------------------------------- float instances
TEST(SumBasic, FloatInstantiations) {
    std::vector<float> xs;
    tp::util::Rng rng(8);
    double ref = 0.0;
    for (int i = 0; i < 50000; ++i) {
        const float v = static_cast<float>(rng.uniform(-10.0, 10.0));
        xs.push_back(v);
        ref += static_cast<double>(v);
    }
    EXPECT_NEAR(ts::sum_kahan<float>(xs), static_cast<float>(ref),
                std::fabs(ref) * 1e-5 + 1e-3);
    EXPECT_NEAR(ts::sum_neumaier<float>(xs), static_cast<float>(ref),
                std::fabs(ref) * 1e-5 + 1e-3);
    // Compensated float beats naive float against the double reference.
    const double e_naive =
        std::fabs(static_cast<double>(ts::sum_naive<float>(xs)) - ref);
    const double e_kahan =
        std::fabs(static_cast<double>(ts::sum_kahan<float>(xs)) - ref);
    EXPECT_LE(e_kahan, e_naive + 1e-6);
}

TEST(Expansion, ComponentsAscendAndHeadIsFaithful) {
    // Structural properties of the (compressed) expansion: components are
    // nonzero with strictly increasing magnitude, and summing everything
    // below the largest component perturbs it by at most one ulp — the
    // consequence of Shewchuk non-overlap that round() relies on.
    ts::ExpansionAccumulator acc;
    tp::util::Rng rng(21);
    for (int i = 0; i < 3000; ++i)
        acc.add(rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(0, 12)));
    const double rounded = acc.round();
    const auto& comps = acc.components();
    ASSERT_FALSE(comps.empty());
    for (std::size_t k = 1; k < comps.size(); ++k) {
        ASSERT_NE(comps[k], 0.0);
        EXPECT_LT(std::fabs(comps[k - 1]), std::fabs(comps[k]));
    }
    const double head = comps.back();
    EXPECT_LE(tp::fp::ulp_distance(rounded, head), 1u);
}

TEST(Reproducible, ReportsDiagnostics) {
    std::vector<double> xs{3.0, -1.0, 4.0, -1.5};
    const auto r = ts::sum_reproducible<double>(xs);
    EXPECT_EQ(r.max_abs, 4.0);
    EXPECT_GE(r.folds_used, 1);
    EXPECT_NEAR(r.value, 4.5, 1e-12);
}

TEST(TreeReduce, SingleElement) {
    const std::vector<double> one{42.0};
    EXPECT_EQ(ts::global_min<double>(one, 1e300), 42.0);
    EXPECT_EQ(ts::global_max<double>(one, -1e300), 42.0);
}
