#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sem/operators.hpp"
#include "sem/quadrature.hpp"

namespace tse = tp::sem;

// ---------------------------------------------------------------- legendre
TEST(Legendre, KnownValues) {
    EXPECT_DOUBLE_EQ(tse::legendre(0, 0.3).value, 1.0);
    EXPECT_DOUBLE_EQ(tse::legendre(1, 0.3).value, 0.3);
    // P2(x) = (3x^2 - 1)/2.
    EXPECT_NEAR(tse::legendre(2, 0.3).value, (3 * 0.09 - 1) / 2, 1e-15);
    // P3(x) = (5x^3 - 3x)/2.
    EXPECT_NEAR(tse::legendre(3, 0.5).value, (5 * 0.125 - 1.5) / 2, 1e-15);
    EXPECT_DOUBLE_EQ(tse::legendre(7, 1.0).value, 1.0);
    EXPECT_DOUBLE_EQ(tse::legendre(7, -1.0).value, -1.0);
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
    for (int n = 1; n <= 9; ++n) {
        const double x = 0.37;
        const double h = 1e-6;
        const double fd = (tse::legendre(n, x + h).value -
                           tse::legendre(n, x - h).value) /
                          (2 * h);
        EXPECT_NEAR(tse::legendre(n, x).derivative, fd, 1e-7) << "n=" << n;
    }
}

TEST(Legendre, EndpointDerivative) {
    // P_n'(1) = n(n+1)/2.
    for (int n = 1; n <= 8; ++n)
        EXPECT_NEAR(tse::legendre(n, 1.0).derivative, n * (n + 1) / 2.0,
                    1e-12);
}

// -------------------------------------------------------------- quadrature
TEST(GaussLobatto, KnownSmallRules) {
    const auto r2 = tse::gauss_lobatto(2);
    ASSERT_EQ(r2.size(), 3u);
    EXPECT_DOUBLE_EQ(r2.nodes[0], -1.0);
    EXPECT_DOUBLE_EQ(r2.nodes[1], 0.0);
    EXPECT_DOUBLE_EQ(r2.nodes[2], 1.0);
    EXPECT_NEAR(r2.weights[0], 1.0 / 3.0, 1e-15);
    EXPECT_NEAR(r2.weights[1], 4.0 / 3.0, 1e-15);

    const auto r3 = tse::gauss_lobatto(3);
    ASSERT_EQ(r3.size(), 4u);
    EXPECT_NEAR(r3.nodes[1], -1.0 / std::sqrt(5.0), 1e-14);
    EXPECT_NEAR(r3.weights[1], 5.0 / 6.0, 1e-14);
    EXPECT_NEAR(r3.weights[0], 1.0 / 6.0, 1e-14);
}

class QuadratureExactness : public ::testing::TestWithParam<int> {};

TEST_P(QuadratureExactness, LobattoExactToDegree2Nminus1) {
    const int order = GetParam();
    const auto rule = tse::gauss_lobatto(order);
    // Integrate x^p over [-1,1] for p = 0 .. 2*order-1.
    for (int p = 0; p <= 2 * order - 1; ++p) {
        double got = 0.0;
        for (std::size_t k = 0; k < rule.size(); ++k)
            got += rule.weights[k] * std::pow(rule.nodes[k], p);
        const double want = (p % 2 == 1) ? 0.0 : 2.0 / (p + 1);
        EXPECT_NEAR(got, want, 1e-12) << "order=" << order << " p=" << p;
    }
}

TEST_P(QuadratureExactness, GaussExactToDegree2Nminus1) {
    const int n = GetParam();
    const auto rule = tse::gauss_legendre(n);
    for (int p = 0; p <= 2 * n - 1; ++p) {
        double got = 0.0;
        for (std::size_t k = 0; k < rule.size(); ++k)
            got += rule.weights[k] * std::pow(rule.nodes[k], p);
        const double want = (p % 2 == 1) ? 0.0 : 2.0 / (p + 1);
        EXPECT_NEAR(got, want, 1e-12) << "n=" << n << " p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Orders, QuadratureExactness,
                         ::testing::Range(1, 13));

TEST(GaussLobatto, NodesSymmetricAndSorted) {
    for (int order = 2; order <= 12; ++order) {
        const auto r = tse::gauss_lobatto(order);
        for (std::size_t k = 0; k + 1 < r.size(); ++k)
            EXPECT_LT(r.nodes[k], r.nodes[k + 1]);
        for (std::size_t k = 0; k < r.size(); ++k) {
            EXPECT_EQ(r.nodes[k], -r.nodes[r.size() - 1 - k]);
            EXPECT_DOUBLE_EQ(r.weights[k], r.weights[r.size() - 1 - k]);
        }
    }
}

TEST(GaussLobatto, WeightsSumToTwo) {
    for (int order = 1; order <= 12; ++order) {
        const auto r = tse::gauss_lobatto(order);
        double s = 0.0;
        for (const double w : r.weights) s += w;
        EXPECT_NEAR(s, 2.0, 1e-13);
    }
}

TEST(Quadrature, RejectsBadOrders) {
    EXPECT_THROW((void)tse::gauss_lobatto(0), std::invalid_argument);
    EXPECT_THROW((void)tse::gauss_legendre(0), std::invalid_argument);
}

// --------------------------------------------------------------- operators
TEST(Operators, DerivativeExactForPolynomials) {
    for (int order = 2; order <= 10; ++order) {
        const auto rule = tse::gauss_lobatto(order);
        const auto D = tse::derivative_matrix(rule.nodes);
        // d/dx of x^p is exact for p <= order.
        for (int p = 0; p <= order; ++p) {
            for (int i = 0; i <= order; ++i) {
                double got = 0.0;
                for (int j = 0; j <= order; ++j)
                    got += D.at(i, j) *
                           std::pow(rule.nodes[static_cast<std::size_t>(j)],
                                    p);
                const double x = rule.nodes[static_cast<std::size_t>(i)];
                const double want = p == 0 ? 0.0 : p * std::pow(x, p - 1);
                EXPECT_NEAR(got, want, 1e-10)
                    << "order=" << order << " p=" << p << " i=" << i;
            }
        }
    }
}

TEST(Operators, DerivativeRowsKillConstantsExactly) {
    const auto rule = tse::gauss_lobatto(8);
    const auto D = tse::derivative_matrix(rule.nodes);
    for (int i = 0; i < D.n; ++i) {
        double s = 0.0;
        for (int j = 0; j < D.n; ++j) s += D.at(i, j);
        // The diagonal is the negated off-diagonal sum; re-summing in a
        // different order leaves only rounding noise.
        EXPECT_NEAR(s, 0.0, 1e-13);
    }
}

TEST(Operators, InterpolationReproducesPolynomials) {
    const auto from = tse::gauss_lobatto(6).nodes;
    const auto to = tse::gauss_legendre(7).nodes;
    const auto M = tse::interpolation_matrix(from, to);
    for (int p = 0; p <= 6; ++p)
        for (int i = 0; i < M.n; ++i) {
            double got = 0.0;
            for (int j = 0; j < M.n; ++j)
                got += M.at(i, j) *
                       std::pow(from[static_cast<std::size_t>(j)], p);
            EXPECT_NEAR(got,
                        std::pow(to[static_cast<std::size_t>(i)], p), 1e-12);
        }
}

TEST(Operators, BarycentricInterpolationHitsNodes) {
    const auto nodes = tse::gauss_lobatto(5).nodes;
    const auto bary = tse::barycentric_weights(nodes);
    std::vector<double> vals(nodes.size());
    for (std::size_t k = 0; k < nodes.size(); ++k)
        vals[k] = std::sin(nodes[k]);
    for (std::size_t k = 0; k < nodes.size(); ++k)
        EXPECT_EQ(tse::lagrange_interpolate(nodes, bary, vals, nodes[k]),
                  vals[k]);
    // Off-node: close to sin for a smooth function.
    EXPECT_NEAR(tse::lagrange_interpolate(nodes, bary, vals, 0.123),
                std::sin(0.123), 1e-5);
}

TEST(Operators, InvertRoundTrips) {
    const auto V = tse::legendre_vandermonde(tse::gauss_lobatto(7));
    const auto Vi = tse::invert(V);
    const auto I = tse::matmul(V, Vi);
    for (int r = 0; r < I.n; ++r)
        for (int c = 0; c < I.n; ++c)
            EXPECT_NEAR(I.at(r, c), r == c ? 1.0 : 0.0, 1e-11);
}

TEST(Operators, InvertRejectsSingular) {
    tse::DenseMatrix s(3);  // all zeros
    EXPECT_THROW((void)tse::invert(s), std::runtime_error);
}

TEST(Operators, FilterPreservesLowModesDampsHigh) {
    const auto rule = tse::gauss_lobatto(8);
    const int cutoff = 3;
    const auto F = tse::exponential_filter(rule, cutoff, 36.0, 16);
    // Apply to a pure Legendre mode: modes <= cutoff unchanged, the top
    // mode strongly damped.
    auto apply_to_mode = [&](int mode) {
        double max_out = 0.0, max_in = 0.0;
        std::vector<double> in(rule.size());
        for (std::size_t k = 0; k < rule.size(); ++k) {
            in[k] = tse::legendre(mode, rule.nodes[k]).value;
            max_in = std::max(max_in, std::fabs(in[k]));
        }
        for (int i = 0; i < F.n; ++i) {
            double v = 0.0;
            for (int j = 0; j < F.n; ++j)
                v += F.at(i, j) * in[static_cast<std::size_t>(j)];
            max_out = std::max(max_out,
                               std::fabs(v - in[static_cast<std::size_t>(i)]));
        }
        return max_out / max_in;
    };
    for (int mode = 0; mode <= cutoff; ++mode)
        EXPECT_LT(apply_to_mode(mode), 1e-10) << "mode " << mode;
    EXPECT_GT(apply_to_mode(8), 0.9);  // top mode nearly removed
}

TEST(Operators, FilterRejectsBadCutoff) {
    const auto rule = tse::gauss_lobatto(4);
    EXPECT_THROW((void)tse::exponential_filter(rule, -1, 36.0, 16),
                 std::invalid_argument);
    EXPECT_THROW((void)tse::exponential_filter(rule, 4, 36.0, 16),
                 std::invalid_argument);
}

TEST(Operators, MatmulMismatchThrows) {
    tse::DenseMatrix a(2), b(3);
    EXPECT_THROW((void)tse::matmul(a, b), std::invalid_argument);
}
