// Distributed-solver contracts that need their own binary: the
// zero-steady-state-allocation guarantee of step() and total_mass() is
// checked with a global operator-new counter (the same pattern as
// test_obs.cpp's zero-cost-when-off test, and the two counters cannot
// share one process), plus the decomposition-invariance matrix, the
// communicator drain/deadlock contracts, and the load balancer's exact
// state carryover.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "par/comm.hpp"
#include "par/dist_shallow.hpp"

using namespace tp;

// ------------------------------------------------- allocation bookkeeping

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

template <typename P>
par::DistributedShallowSolver<P> make_solver(int grid, int ranks,
                                             bool overlap, simd::Mode mode,
                                             int lb_interval = 0) {
    par::DistConfig cfg;
    cfg.nx = cfg.ny = grid;
    cfg.ranks = ranks;
    cfg.overlap = overlap;
    cfg.simd = mode;
    cfg.lb_interval = lb_interval;
    return par::DistributedShallowSolver<P>(cfg);
}

template <typename P>
std::vector<double> height_after(int grid, int steps, int ranks,
                                 bool overlap, simd::Mode mode,
                                 int lb_interval = 0) {
    auto s = make_solver<P>(grid, ranks, overlap, mode, lb_interval);
    s.initialize_dam_break();
    s.run(steps);
    EXPECT_TRUE(s.comm_drained());
    return s.gather_height();
}

// The halo exchange's buffer pool, the swap buffers, and every scratch
// vector are sized by the first steps; after that the steady state of
// step() — and of the total_mass() diagnostic — must perform zero heap
// allocations, in every schedule and at every rank count.
TEST(DistAllocations, SteadyStateStepIsAllocationFree) {
    for (const bool overlap : {false, true}) {
        auto s = make_solver<fp::MixedPrecision>(32, 3, overlap,
                                                 simd::Mode::Native);
        s.initialize_dam_break();
        s.run(3);  // warm the comm pool and every lazy scratch buffer
        (void)s.total_mass();
        const std::uint64_t before = g_allocs.load();
        s.run(5);
        (void)s.total_mass();
        EXPECT_EQ(g_allocs.load(), before)
            << (overlap ? "overlap" : "BSP") << " schedule allocated in "
            << "steady state";
        EXPECT_TRUE(s.comm_drained());
    }
}

// The rebalance path reuses persistent carry buffers too: a re-split may
// reallocate rank stripes (allowed — the partition changed), but a
// uniform-cost evaluation that moves nothing must stay allocation-free.
TEST(DistAllocations, UniformRebalanceIsAllocationFree) {
    auto s = make_solver<fp::FullPrecision>(32, 4, true, simd::Mode::Native);
    s.initialize_dam_break();
    s.run(2);
    const std::vector<double> uniform(32, 1.0);
    s.rebalance(uniform);  // warm: the evaluation itself moves no rows
    const std::uint64_t before = g_allocs.load();
    s.rebalance(uniform);
    EXPECT_EQ(g_allocs.load(), before);
    EXPECT_EQ(s.lb_stats().resplits, 0u);
}

// Decomposition-invariance matrix: the height field must repeat to the
// last bit across rank counts (1, R, one-row-per-rank), both schedules,
// and both SIMD shapes, for every precision policy — the contract the
// overlapped pipeline, the kernel dispatch, and the halo path all hang
// off. (bench/table_dist_scaling gates the same property at larger
// sizes; this is the fast in-suite version.)
template <typename P>
void invariance_matrix() {
    const int grid = 24, steps = 12;
    const auto ref = height_after<P>(grid, steps, 1, false,
                                     simd::Mode::Scalar);
    for (const int ranks : {2, 3, grid})
        for (const bool overlap : {false, true})
            for (const auto mode :
                 {simd::Mode::Scalar, simd::Mode::Native})
                EXPECT_EQ(height_after<P>(grid, steps, ranks, overlap,
                                          mode),
                          ref)
                    << ranks << " ranks, overlap=" << overlap
                    << ", native=" << (mode == simd::Mode::Native);
}

TEST(DistInvariance, MinimumPrecision) {
    invariance_matrix<fp::MinimumPrecision>();
}
TEST(DistInvariance, MixedPrecision) {
    invariance_matrix<fp::MixedPrecision>();
}
TEST(DistInvariance, FullPrecision) {
    invariance_matrix<fp::FullPrecision>();
}

// Periodic measured-cost rebalancing is bitwise invisible as well — the
// re-split carries every row over exactly.
TEST(DistInvariance, PeriodicLoadBalancingDoesNotChangeState) {
    const auto ref = height_after<fp::MixedPrecision>(
        24, 12, 3, true, simd::Mode::Native, /*lb_interval=*/0);
    EXPECT_EQ(height_after<fp::MixedPrecision>(24, 12, 3, true,
                                               simd::Mode::Native,
                                               /*lb_interval=*/4),
              ref);
}

// Forced skewed re-split mid-run: rows change owners, the solution does
// not change bits relative to an undisturbed run.
TEST(DistLoadBalance, SkewedResplitCarriesStateExactly) {
    const int grid = 24;
    auto undisturbed = make_solver<fp::FullPrecision>(grid, 3, true,
                                                      simd::Mode::Native);
    undisturbed.initialize_dam_break();
    undisturbed.run(10);

    auto resplit = make_solver<fp::FullPrecision>(grid, 3, true,
                                                  simd::Mode::Native);
    resplit.initialize_dam_break();
    resplit.run(4);
    std::vector<double> skew(grid, 1.0);
    for (int j = 0; j < grid / 3; ++j) skew[static_cast<std::size_t>(j)] = 9.0;
    resplit.rebalance(skew);
    EXPECT_GE(resplit.lb_stats().resplits, 1u);
    EXPECT_GT(resplit.lb_stats().rows_moved, 0u);
    resplit.run(6);

    EXPECT_EQ(resplit.gather_height(), undisturbed.gather_height());
    EXPECT_TRUE(resplit.comm_drained());
}

// A uniform-cost re-split reproduces the constructor's partition — the
// balancer is a fixed point at balance, so a healthy run never churns.
TEST(DistLoadBalance, UniformCostIsANoOp) {
    auto s = make_solver<fp::FullPrecision>(30, 4, true, simd::Mode::Native);
    s.initialize_dam_break();
    const auto before = s.row_partition();
    const std::vector<double> uniform(30, 1.0);
    s.rebalance(uniform);
    EXPECT_EQ(s.row_partition(), before);
    EXPECT_EQ(s.lb_stats().evaluations, 1u);
    EXPECT_EQ(s.lb_stats().resplits, 0u);
}

// ---------------------------------------------- cross-rank message edges

// Sum the per-edge byte counts of a flushed Chrome trace by source rank.
// Each message edge is an s/f flow pair sharing one args block; counting
// only the "s" start events counts every edge exactly once.
std::map<int, std::uint64_t> edge_bytes_by_src(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    const auto doc = obs::json::parse(buf.str());
    std::map<int, std::uint64_t> by_src;
    if (!doc || !doc->is_object()) return by_src;
    const obs::json::Value* events = doc->find("traceEvents");
    if (events == nullptr || !events->is_array()) return by_src;
    for (const obs::json::Value& e : events->items()) {
        if (e.string_or("ph", "") != "s") continue;
        const obs::json::Value* args = e.find("args");
        if (args == nullptr) {
            ADD_FAILURE() << "flow start without args in " << path;
            continue;
        }
        by_src[static_cast<int>(args->number_or("src", -1.0))] +=
            static_cast<std::uint64_t>(args->number_or("bytes", 0.0));
    }
    return by_src;
}

// Message-edge conservation: summed over the trace, the per-edge byte
// counts must reproduce the comm layer's sent-byte counters — per source
// rank and in total — and that total must equal the work ledger's
// dist_halo_post + dist_halo_wait split. Checked across rank counts,
// both schedules, and both SIMD shapes; comm_drained() guarantees every
// posted byte was delivered, so posting-side and delivery-side
// accounting must agree exactly.
TEST(DistTracing, EdgeBytesMatchCommAndWorkLedgers) {
    for (const int ranks : {2, 4}) {
        for (const bool overlap : {false, true}) {
            for (const auto mode :
                 {simd::Mode::Scalar, simd::Mode::Native}) {
                const std::string path =
                    ::testing::TempDir() + "dist_edges.trace.json";
                obs::trace_start(path);
                auto s = make_solver<fp::MixedPrecision>(24, ranks,
                                                         overlap, mode);
                s.initialize_dam_break();
                s.run(6);
                EXPECT_TRUE(s.comm_drained());
                const std::uint64_t total = s.halo_bytes_sent();
                std::vector<std::uint64_t> per_rank;
                for (int r = 0; r < ranks; ++r)
                    per_rank.push_back(s.halo_bytes_sent(r));
                EXPECT_GT(obs::trace_stop(), 0u);

                std::map<int, std::uint64_t> by_src;
                by_src = edge_bytes_by_src(path);
                std::uint64_t edge_total = 0;
                for (const auto& [src, bytes] : by_src) edge_total += bytes;
                EXPECT_EQ(edge_total, total)
                    << ranks << " ranks, overlap=" << overlap;
                for (int r = 0; r < ranks; ++r)
                    EXPECT_EQ(by_src[r], per_rank[static_cast<std::size_t>(
                                             r)])
                        << "rank " << r << " of " << ranks
                        << ", overlap=" << overlap;

                const auto* post = s.ledger().find("dist_halo_post");
                const auto* wait = s.ledger().find("dist_halo_wait");
                ASSERT_NE(post, nullptr);
                ASSERT_NE(wait, nullptr);
                EXPECT_EQ(post->bytes + wait->bytes, total);
            }
        }
    }
}

// Tracing must observe, never perturb: a traced run's height field is
// bitwise identical to an untraced one, load balancing included.
TEST(DistTracing, TracedRunIsBitwiseIdenticalToUntraced) {
    ASSERT_FALSE(obs::trace_enabled());
    const auto ref = height_after<fp::MixedPrecision>(
        24, 12, 3, true, simd::Mode::Native, /*lb_interval=*/4);
    obs::trace_start(::testing::TempDir() + "dist_invisible.trace.json");
    const auto traced = height_after<fp::MixedPrecision>(
        24, 12, 3, true, simd::Mode::Native, /*lb_interval=*/4);
    EXPECT_GT(obs::trace_stop(), 0u);
    EXPECT_EQ(traced, ref);
}

// ------------------------------------------------- communicator contracts

// Claiming a message that was never posted is a deadlock in the simulated
// schedule — both the nonblocking and the BSP receive must throw, not
// hang or fabricate data.
TEST(DistComm, MissingMessageThrows) {
    par::VirtualComm comm(2);
    EXPECT_THROW((void)comm.complete(1, 0, 7), std::runtime_error);
    comm.exchange();
    EXPECT_THROW((void)comm.recv(1, 0, 7), std::runtime_error);
    EXPECT_TRUE(comm.drained());
}

// drained() must see through both delivery paths: a posted-but-unclaimed
// nonblocking message and an exchanged-but-unreceived BSP message each
// count as leaked traffic.
TEST(DistComm, DrainedTracksBothDeliveryPaths) {
    par::VirtualComm comm(2);
    comm.post_bytes(0, 1, 1, comm.acquire(8));
    EXPECT_FALSE(comm.drained());
    comm.release(comm.complete(1, 0, 1).bytes);
    EXPECT_TRUE(comm.drained());

    comm.send_bytes(0, 1, 2, comm.acquire(8));
    EXPECT_FALSE(comm.drained());
    comm.exchange();
    EXPECT_FALSE(comm.drained());
    comm.release(comm.recv(1, 0, 2).bytes);
    EXPECT_TRUE(comm.drained());
}

}  // namespace
