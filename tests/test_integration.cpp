// End-to-end shape tests: run both mini-apps at all precisions, project
// them onto the paper's architectures, and assert the qualitative results
// the paper reports (who wins, in which direction, and roughly by how
// much). These are the same code paths the bench binaries print.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "costmodel/aws.hpp"
#include "fp/precision.hpp"
#include "hw/archspec.hpp"
#include "hw/roofline.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"

namespace tf = tp::fp;
namespace th = tp::hw;

namespace {

struct ClamrRun {
    tp::perf::WorkLedger ledger;
    std::uint64_t state_bytes = 0;
    std::uint64_t checkpoint_bytes = 0;
    double host_seconds = 0.0;
};

std::map<std::string, ClamrRun> run_clamr_all_precisions(int n, int steps) {
    std::map<std::string, ClamrRun> out;
    tf::for_each_precision([&]<typename P>() {
        tp::shallow::Config cfg;
        cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, 2};
        tp::shallow::ShallowWaterSolver<P> s(cfg);
        s.initialize_dam_break({});
        tp::util::WallTimer t;
        s.run(steps);
        ClamrRun r;
        r.ledger = s.ledger();
        r.state_bytes = s.state_bytes();
        r.checkpoint_bytes = s.checkpoint_bytes();
        r.host_seconds = t.elapsed_seconds();
        out.emplace(std::string(P::name), std::move(r));
    });
    return out;
}

/// Shared across the shape tests: large enough that per-kernel work, not
/// launch overhead, dominates the GPU projections.
const std::map<std::string, ClamrRun>& clamr_runs() {
    static const auto runs = run_clamr_all_precisions(96, 60);
    return runs;
}

}  // namespace

/// Projection options for shape assertions: the asymptotic (large-grid)
/// regime the paper's production sizes sit in, where per-step dispatch
/// overhead is negligible.
th::ProjectionOptions asymptotic() {
    th::ProjectionOptions opt;
    opt.include_launch_overhead = false;
    return opt;
}

TEST(Integration, ClamrProjectedRuntimeOrderingPerArch) {
    const auto& runs = clamr_runs();
    for (const auto& arch : th::clamr_architectures()) {
        th::PerfProjector proj(arch, asymptotic());
        const double t_min =
            proj.project_app_seconds(runs.at("minimum").ledger);
        const double t_mixed =
            proj.project_app_seconds(runs.at("mixed").ledger);
        const double t_full =
            proj.project_app_seconds(runs.at("full").ledger);
        // Table I ordering: min is fastest everywhere; mixed lands at or
        // near full (exactly equal in the paper's GPU rows — conversions
        // ride the DP pipe, so mixed may even slightly exceed full there).
        EXPECT_LE(t_min, t_mixed * 1.001) << arch.name;
        EXPECT_LE(t_min, t_full * 1.001) << arch.name;
        EXPECT_LE(t_mixed, t_full * 1.25) << arch.name;
        // Reduced precision always wins by a nontrivial margin.
        EXPECT_GT(t_full / t_min, 1.05) << arch.name;
    }
}

TEST(Integration, ClamrGpuSpeedupsExceedCpuSpeedups) {
    // Table I: CPU speedups are ~19-24%; GPU speedups are >= 150%.
    const auto& runs = clamr_runs();
    double worst_gpu = 1e9, best_cpu = 0.0;
    for (const auto& arch : th::clamr_architectures()) {
        th::PerfProjector proj(arch, asymptotic());
        const double speedup =
            proj.project_app_seconds(runs.at("full").ledger) /
            proj.project_app_seconds(runs.at("minimum").ledger);
        if (arch.is_gpu())
            worst_gpu = std::min(worst_gpu, speedup);
        else
            best_cpu = std::max(best_cpu, speedup);
    }
    EXPECT_GT(worst_gpu, best_cpu);
}

TEST(Integration, ClamrTitanXShowsLargestSpeedup) {
    const auto& runs = clamr_runs();
    std::string argmax;
    double best = 0.0;
    for (const auto& arch : th::clamr_architectures()) {
        th::PerfProjector proj(arch, asymptotic());
        const double speedup =
            proj.project_app_seconds(runs.at("full").ledger) /
            proj.project_app_seconds(runs.at("minimum").ledger);
        if (speedup > best) {
            best = speedup;
            argmax = arch.name;
        }
    }
    EXPECT_EQ(argmax, "GTX TITAN X");
    EXPECT_GT(best, 2.0);  // paper: 4.53x
}

TEST(Integration, ClamrMixedNearFullOnGpus) {
    // Table I: on Kepler GPUs mixed runs as slow as full (12.8 vs 12.8 s)
    // because double-pipe conversions dominate.
    const auto& runs = clamr_runs();
    const auto k40 = *th::find_architecture("Tesla K40m");
    th::PerfProjector proj(k40, asymptotic());
    const double t_mixed = proj.project_app_seconds(runs.at("mixed").ledger);
    const double t_full = proj.project_app_seconds(runs.at("full").ledger);
    const double t_min = proj.project_app_seconds(runs.at("minimum").ledger);
    // Mixed is much closer to full than to min.
    EXPECT_LT(std::fabs(t_mixed - t_full), std::fabs(t_mixed - t_min));
}

TEST(Integration, ClamrEnergyTracksRuntime) {
    // Table II = TDP x Table I: energy ordering matches runtime ordering.
    const auto& runs = clamr_runs();
    for (const auto& arch : th::clamr_architectures()) {
        th::PerfProjector proj(arch, asymptotic());
        const double e_min = th::energy_joules(
            arch, proj.project_app_seconds(runs.at("minimum").ledger));
        const double e_full = th::energy_joules(
            arch, proj.project_app_seconds(runs.at("full").ledger));
        EXPECT_LT(e_min, e_full) << arch.name;
    }
}

TEST(Integration, ClamrMemoryDecreasesWithReducedPrecision) {
    const auto runs = clamr_runs();
    for (const auto& arch : th::clamr_architectures()) {
        th::PerfProjector proj(arch);
        const auto m_min =
            proj.project_memory_bytes(runs.at("minimum").state_bytes);
        const auto m_full =
            proj.project_memory_bytes(runs.at("full").state_bytes);
        EXPECT_LT(m_min, m_full) << arch.name;
    }
}

TEST(Integration, VectorizationAmplifiesPrecisionGains) {
    // Table III: the measured (host) finite_diff gap between min and full
    // is larger with the SIMD kernel than the scalar kernel. Use projected
    // times on the Haswell spec for determinism of the CI host.
    const auto vec = clamr_runs();
    // Scalar variant.
    std::map<std::string, ClamrRun> scal;
    tf::for_each_precision([&]<typename P>() {
        tp::shallow::Config cfg;
        cfg.geom = {0.0, 0.0, 100.0, 100.0, 96, 96, 2};
        cfg.simd = tp::simd::Mode::Scalar;
        tp::shallow::ShallowWaterSolver<P> s(cfg);
        s.initialize_dam_break({});
        s.run(60);
        ClamrRun r;
        r.ledger = s.ledger();
        scal.emplace(std::string(P::name), std::move(r));
    });
    const auto hw = *th::find_architecture("Haswell E5-2660 v3");
    th::ProjectionOptions vopt = asymptotic(), sopt = asymptotic();
    sopt.vectorized = false;
    th::PerfProjector pv(hw, vopt), ps(hw, sopt);
    auto fd = [](const ClamrRun& r) { return *r.ledger.find("finite_diff"); };
    const double gain_vec = pv.project(fd(vec.at("full"))).total() /
                            pv.project(fd(vec.at("minimum"))).total();
    const double gain_scal = ps.project(fd(scal.at("full"))).total() /
                             ps.project(fd(scal.at("minimum"))).total();
    EXPECT_GT(gain_vec, gain_scal * 1.2);
    // Scalar kernels are instruction-bound at the same SP/DP rate, so the
    // residual gain is small (the paper saw ~12%).
    EXPECT_GE(gain_scal, 1.0 - 1e-9);
    EXPECT_LT(gain_scal, 1.5);
}

TEST(Integration, SelfProjectedSpeedupsMatchTableVShape) {
    // Table V: single precision wins on every architecture; the TITAN X
    // win (3x+) dwarfs the compute-GPU wins (~30%).
    std::map<std::string, tp::perf::WorkLedger> ledgers;
    auto run = [&](auto tag, bool /*unused*/) {
        using P = decltype(tag);
        tp::sem::SemConfig cfg;
        cfg.nx = cfg.ny = cfg.nz = 4;
        cfg.order = 7;
        tp::sem::SpectralEulerSolver<P> s(cfg);
        s.initialize_thermal_bubble({});
        s.run(5);
        ledgers.emplace(std::string(P::name), s.ledger());
    };
    run(tf::MinimumPrecision{}, true);
    run(tf::FullPrecision{}, true);

    double titan_speedup = 0.0;
    for (const auto& arch : th::paper_architectures()) {
        th::PerfProjector proj(arch, asymptotic());
        const double t_sp = proj.project_app_seconds(ledgers.at("minimum"));
        const double t_dp = proj.project_app_seconds(ledgers.at("full"));
        EXPECT_GT(t_dp / t_sp, 1.1) << arch.name;
        if (arch.name == "GTX TITAN X") titan_speedup = t_dp / t_sp;
    }
    EXPECT_GT(titan_speedup, 3.0);
}

TEST(Integration, CostModelReproducesTableSevenShape) {
    // Using the paper's own Haswell runtimes and file sizes as inputs, the
    // model lands near the published rows (ratios exact, dollars close).
    const tp::costmodel::AwsRates rates;
    const auto full = tp::costmodel::estimate_monthly_cost(
        rates, tp::costmodel::clamr_scenario(31.3, 0.128));
    const auto min = tp::costmodel::estimate_monthly_cost(
        rates, tp::costmodel::clamr_scenario(26.3, 0.086));
    // Paper: full $448.63 total, min $344.88 total -> 23% saving.
    EXPECT_NEAR(full.total(), 448.63, 45.0);
    EXPECT_NEAR(min.total(), 344.88, 40.0);
    EXPECT_NEAR(tp::costmodel::savings_fraction(full, min), 0.23, 0.05);
}
