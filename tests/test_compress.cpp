#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "compress/bitstream.hpp"
#include "compress/fixedrate.hpp"
#include "util/rng.hpp"

namespace tc = tp::compress;

// --------------------------------------------------------------- bitstream
TEST(BitStream, RoundTripsMixedWidths) {
    std::vector<std::uint8_t> buf;
    tc::BitWriter w(buf);
    w.write(0b101, 3);
    w.write(0xDEADBEEFull, 32);
    w.write(1, 1);
    w.write(0x123456789ABCDEFull, 57);
    tc::BitReader r(buf);
    EXPECT_EQ(r.read(3), 0b101u);
    EXPECT_EQ(r.read(32), 0xDEADBEEFull);
    EXPECT_EQ(r.read(1), 1u);
    EXPECT_EQ(r.read(57), 0x123456789ABCDEFull);
}

TEST(BitStream, MasksHighBits) {
    std::vector<std::uint8_t> buf;
    tc::BitWriter w(buf);
    w.write(0xFFFF, 4);  // only low 4 bits stored
    w.write(0, 4);
    tc::BitReader r(buf);
    EXPECT_EQ(r.read(4), 0xFu);
    EXPECT_EQ(r.read(4), 0u);
}

TEST(BitStream, ReaderThrowsPastEnd) {
    std::vector<std::uint8_t> buf{0xAB};
    tc::BitReader r(buf);
    (void)r.read(8);
    EXPECT_THROW((void)r.read(1), std::out_of_range);
}

TEST(BitStream, RejectsBadWidths) {
    std::vector<std::uint8_t> buf;
    tc::BitWriter w(buf);
    EXPECT_THROW(w.write(0, 0), std::invalid_argument);
    EXPECT_THROW(w.write(0, 65), std::invalid_argument);
    tc::BitReader r(buf);
    EXPECT_THROW((void)r.read(0), std::invalid_argument);
}

TEST(BitStream, RandomRoundTrip) {
    tp::util::Rng rng(9);
    std::vector<std::uint8_t> buf;
    tc::BitWriter w(buf);
    std::vector<std::pair<std::uint64_t, int>> fields;
    for (int i = 0; i < 2000; ++i) {
        const int bits = 1 + static_cast<int>(rng.next_below(64));
        std::uint64_t v = rng.next_u64();
        if (bits < 64) v &= (std::uint64_t{1} << bits) - 1;
        fields.emplace_back(v, bits);
        w.write(v, bits);
    }
    tc::BitReader r(buf);
    for (const auto& [v, bits] : fields) EXPECT_EQ(r.read(bits), v);
}

// --------------------------------------------------------------- fixedrate
namespace {
std::vector<double> field_like_data(std::size_t n, std::uint64_t seed) {
    tp::util::Rng rng(seed);
    std::vector<double> xs(n);
    // Smooth-ish field with block-to-block dynamic range.
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = 10.0 + 70.0 * std::sin(0.01 * static_cast<double>(i)) +
                rng.uniform(-0.5, 0.5);
    return xs;
}
}  // namespace

class FixedRate : public ::testing::TestWithParam<int> {};

TEST_P(FixedRate, ErrorWithinAnalyticBound) {
    const int bits = GetParam();
    const auto xs = field_like_data(1000, 3);
    const auto c = tc::compress_fixed_rate(xs, bits);
    const auto back = tc::decompress(c);
    ASSERT_EQ(back.size(), xs.size());
    for (std::size_t start = 0; start < xs.size();
         start += tc::kBlockSize) {
        const std::size_t n =
            std::min(tc::kBlockSize, xs.size() - start);
        double peak = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            peak = std::max(peak, std::fabs(xs[start + i]));
        const double bound = tc::error_bound(peak, bits);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_LE(std::fabs(back[start + i] - xs[start + i]),
                      bound * 1.0000001)
                << "bits=" << bits << " i=" << start + i;
    }
}

TEST_P(FixedRate, RatioMatchesRate) {
    const int bits = GetParam();
    const auto xs = field_like_data(64 * 100, 5);
    const auto c = tc::compress_fixed_rate(xs, bits);
    // 64 bits/value raw vs (bits + 11/64) compressed.
    const double expected = 64.0 / (bits + 11.0 / 64.0);
    EXPECT_NEAR(tc::compression_ratio(c), expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, FixedRate,
                         ::testing::Values(4, 8, 12, 16, 24, 32));

TEST(FixedRateEdge, AllZerosCompressToZeros) {
    const std::vector<double> xs(200, 0.0);
    const auto back = tc::decompress(tc::compress_fixed_rate(xs, 8));
    for (const double v : back) EXPECT_EQ(v, 0.0);
}

TEST(FixedRateEdge, EmptyInput) {
    const std::vector<double> xs;
    const auto c = tc::compress_fixed_rate(xs, 8);
    EXPECT_EQ(c.count, 0u);
    EXPECT_TRUE(tc::decompress(c).empty());
}

TEST(FixedRateEdge, PartialFinalBlock) {
    auto xs = field_like_data(70, 7);  // 64 + 6
    const auto back = tc::decompress(tc::compress_fixed_rate(xs, 16));
    ASSERT_EQ(back.size(), 70u);
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(back[i], xs[i], 0.01);
}

TEST(FixedRateEdge, RejectsNonFinite) {
    std::vector<double> xs{1.0, std::numeric_limits<double>::infinity()};
    EXPECT_THROW((void)tc::compress_fixed_rate(xs, 8),
                 std::invalid_argument);
    xs[1] = std::nan("");
    EXPECT_THROW((void)tc::compress_fixed_rate(xs, 8),
                 std::invalid_argument);
}

TEST(FixedRateEdge, RejectsBadRates) {
    const std::vector<double> xs{1.0};
    EXPECT_THROW((void)tc::compress_fixed_rate(xs, 1),
                 std::invalid_argument);
    EXPECT_THROW((void)tc::compress_fixed_rate(xs, 33),
                 std::invalid_argument);
}

TEST(FixedRateEdge, NegativeValuesRoundTrip) {
    std::vector<double> xs;
    for (int i = 0; i < 128; ++i) xs.push_back(i % 2 == 0 ? -5.25 : 5.25);
    const auto back = tc::decompress(tc::compress_fixed_rate(xs, 16));
    for (std::size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(back[i], xs[i], 1e-3);
}

// The two correctness contracts the quantizer must honour exactly (no
// fudge factor): the advertised bound holds even for values sitting at
// the block peak (the peak must land on a representable code), and deep
// subnormal blocks clamp to the smallest normal binade instead of
// wrapping the 11-bit stored exponent into the all-zero sentinel or a
// huge bogus binade.
TEST(FixedRateEdge, BoundHoldsExactlyAtPeak) {
    for (const int bits : {4, 8, 12, 16}) {
        std::vector<double> xs(96);
        for (std::size_t i = 0; i < xs.size(); ++i)
            xs[i] = (i % 2 == 0 ? 3.7 : -3.7);  // every value at +/-peak
        const auto back = tc::decompress(tc::compress_fixed_rate(xs, bits));
        const double bound = tc::error_bound(3.7, bits);
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_LE(std::fabs(back[i] - xs[i]), bound)
                << "bits=" << bits << " i=" << i;
    }
}

TEST(FixedRateEdge, SubnormalBlocksRoundTripWithinBound) {
    // Peaks far below 2^-1022: the stored exponent clamps to -1022 and
    // the bound is evaluated against the clamped binade.
    std::vector<double> xs(130);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = std::ldexp((i % 2 == 0 ? 1.0 : -1.0) *
                               (0.25 + 0.005 * static_cast<double>(i)),
                           -1060);
    for (const int bits : {4, 8, 16}) {
        const auto back = tc::decompress(tc::compress_fixed_rate(xs, bits));
        ASSERT_EQ(back.size(), xs.size());
        const double bound =
            tc::error_bound(std::ldexp(1.0, -1022), bits);
        for (std::size_t i = 0; i < xs.size(); ++i) {
            EXPECT_TRUE(std::isfinite(back[i])) << "i=" << i;
            EXPECT_LE(std::fabs(back[i] - xs[i]), bound)
                << "bits=" << bits << " i=" << i;
        }
    }
}

TEST(FixedRateProperty, RandomBlocksRespectAdvertisedBound) {
    // Property sweep: ragged counts, per-block magnitudes spanning the
    // whole exponent range (deep subnormal through ~2^900), interleaved
    // all-zero blocks, exact +/-peak values. Every reconstruction error
    // must respect error_bound(block peak, bits) with no slack factor.
    tp::util::Rng rng(41);
    for (int trial = 0; trial < 24; ++trial) {
        const std::size_t n = 1 + rng.next_below(5 * tc::kBlockSize);
        std::vector<double> xs(n);
        for (std::size_t start = 0; start < n; start += tc::kBlockSize) {
            const std::size_t len = std::min(tc::kBlockSize, n - start);
            const std::uint64_t kind = rng.next_below(4);
            if (kind == 0) continue;  // all-zero block (sentinel path)
            const int e = -1070 + static_cast<int>(rng.next_below(1970));
            const double scale = std::ldexp(1.0, e);
            if (scale == 0.0 || !std::isfinite(scale)) continue;
            for (std::size_t i = 0; i < len; ++i)
                xs[start + i] = rng.uniform(-1.0, 1.0) * scale;
            if (kind == 1) {
                // Pin two entries to exactly +/-peak magnitude.
                xs[start] = scale;
                if (len > 1) xs[start + 1] = -scale;
            }
        }
        const int bits = 4 * (1 + static_cast<int>(rng.next_below(4)));
        const auto c = tc::compress_fixed_rate(xs, bits);
        const auto back = tc::decompress(c);
        ASSERT_EQ(back.size(), xs.size());
        for (std::size_t start = 0; start < n; start += tc::kBlockSize) {
            const std::size_t len = std::min(tc::kBlockSize, n - start);
            double peak = 0.0;
            for (std::size_t i = 0; i < len; ++i)
                peak = std::max(peak, std::fabs(xs[start + i]));
            // The stored exponent clamps subnormal peaks up to the
            // smallest normal binade; the bound follows the clamp.
            const double bound = tc::error_bound(
                std::max(peak, std::ldexp(1.0, -1022)), bits);
            for (std::size_t i = 0; i < len; ++i)
                EXPECT_LE(std::fabs(back[start + i] - xs[start + i]),
                          peak == 0.0 ? 0.0 : bound)
                    << "trial=" << trial << " bits=" << bits
                    << " i=" << start + i;
        }
    }
}

TEST(FixedRateEdge, HigherRateNeverWorse) {
    const auto xs = field_like_data(640, 11);
    double prev = 1e300;
    for (const int bits : {4, 8, 16, 24}) {
        const auto back = tc::decompress(tc::compress_fixed_rate(xs, bits));
        double linf = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i)
            linf = std::max(linf, std::fabs(back[i] - xs[i]));
        EXPECT_LE(linf, prev);
        prev = linf;
    }
    EXPECT_LT(prev, 1e-4);  // 24-bit rate is tight for this field
}

// ------------------------------------------------- stream validation
// decompress() is fed bytes that may come from a corrupt or truncated
// checkpoint; every header field must be validated before it sizes an
// allocation or drives a shift width.

TEST(DecompressValidation, RejectsBitsOutsideRange) {
    const std::vector<double> xs{1.0, 2.0, 3.0};
    for (const int bad : {0, 1, 33, -5, 64}) {
        auto c = tc::compress_fixed_rate(xs, 8);
        c.bits = bad;
        EXPECT_THROW((void)tc::decompress(c), std::invalid_argument)
            << "bits=" << bad;
    }
}

TEST(DecompressValidation, RejectsHugeCount) {
    // A corrupt count would otherwise size a multi-gigabyte allocation
    // before any payload consistency check could catch it.
    tc::CompressedArray c;
    c.bits = 8;
    c.count = std::uint64_t{1} << 62;
    c.data.assign(16, 0);
    EXPECT_THROW((void)tc::decompress(c), std::invalid_argument);
}

TEST(DecompressValidation, RejectsPayloadSizeMismatch) {
    const auto xs = field_like_data(100, 13);
    for (const int delta : {-1, +1, +64}) {
        auto c = tc::compress_fixed_rate(xs, 12);
        c.data.resize(c.data.size() + delta);
        EXPECT_THROW((void)tc::decompress(c), std::invalid_argument)
            << "delta=" << delta;
    }
    // Count inconsistent with an intact payload is equally rejected.
    auto c = tc::compress_fixed_rate(xs, 12);
    c.count += 1;
    EXPECT_THROW((void)tc::decompress(c), std::invalid_argument);
}

TEST(DecompressValidation, PayloadSizeFormulaMatchesEncoder) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                                std::size_t{64}, std::size_t{65},
                                std::size_t{1000}}) {
        const auto xs = field_like_data(n, 17);
        for (const int bits : {2, 7, 16, 32}) {
            const auto c = tc::compress_fixed_rate(xs, bits);
            EXPECT_EQ(c.data.size(),
                      tc::compressed_payload_bytes(c.count, bits))
                << "n=" << n << " bits=" << bits;
        }
    }
}

TEST(DecompressValidation, RejectsCorruptBlockExponent) {
    // stored_e = 2047 is outside the emittable range [1, 2046]: the
    // encoder rejects magnitudes at or above 2^1023, so the peak legal
    // stored exponent is kMaxExp + bias = 2046. 2047 would reconstruct
    // the peak code as +/-inf. The exponent is the first 11 bits of the
    // block; the bitstream packs LSB-first.
    const auto xs = field_like_data(64, 19);
    auto c = tc::compress_fixed_rate(xs, 8);
    c.data[0] = 0xFF;
    c.data[1] |= 0x07;  // force the leading 11 bits to all ones
    EXPECT_THROW((void)tc::decompress(c), std::invalid_argument);
}

TEST(FixedRateEdge, RejectsTopBinadeMagnitudes) {
    // |v| >= 2^1023 would give the block a stored exponent of 2047 and
    // reconstruct peak codes as infinity; the encoder refuses up front.
    const std::vector<double> xs{0x1p1023};
    EXPECT_THROW((void)tc::compress_fixed_rate(xs, 8),
                 std::invalid_argument);
    const std::vector<double> ok{0x1.fffffffffffffp1022};
    EXPECT_NO_THROW((void)tc::compress_fixed_rate(ok, 8));
}

// --------------------------------------------------- rate-for-tolerance
TEST(BitsForTolerance, SmallestRateMeetingTheBound) {
    const double peak = 3.7e2;
    for (const double tol : {1e-1, 1e-3, 1e-6, 1e-9}) {
        const int bits = tc::bits_for_tolerance(peak, tol);
        ASSERT_GE(bits, 2);
        ASSERT_LE(bits, 32);
        if (bits < 32) EXPECT_LE(tc::error_bound(peak, bits), tol);
        if (bits > 2) EXPECT_GT(tc::error_bound(peak, bits - 1), tol);
    }
}

TEST(BitsForTolerance, SaturatesAndHandlesZeroPeak) {
    EXPECT_EQ(tc::bits_for_tolerance(1.0, 0.0), 32);  // unmeetable
    EXPECT_EQ(tc::bits_for_tolerance(0.0, 1e-6), 2);  // all-zero array
    EXPECT_EQ(tc::bits_for_tolerance(1.0, 10.0), 2);  // loose budget
}
