#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace tu = tp::util;

TEST(Timing, WallTimerMonotonic) {
    tu::WallTimer t;
    const double a = t.elapsed_seconds();
    const double b = t.elapsed_seconds();
    EXPECT_GE(b, a);
    EXPECT_GE(a, 0.0);
}

TEST(Timing, RestartResetsOrigin) {
    tu::WallTimer t;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    t.restart();
    EXPECT_LT(t.elapsed_seconds(), 1.0);
}

TEST(Timing, StopwatchAccumulates) {
    tu::StopwatchRegistry reg;
    reg.add("k", 1.5);
    reg.add("k", 0.5);
    reg.add("other", 0.25);
    EXPECT_DOUBLE_EQ(reg.total("k"), 2.0);
    EXPECT_EQ(reg.calls("k"), 2u);
    EXPECT_DOUBLE_EQ(reg.total("other"), 0.25);
    EXPECT_DOUBLE_EQ(reg.total("missing"), 0.0);
    EXPECT_EQ(reg.calls("missing"), 0u);
}

TEST(Timing, ScopedTimerRecordsOnDestruction) {
    tu::StopwatchRegistry reg;
    {
        tu::ScopedTimer s(reg, "scope");
    }
    EXPECT_EQ(reg.calls("scope"), 1u);
    EXPECT_GE(reg.total("scope"), 0.0);
}

TEST(Format, Fixed) {
    EXPECT_EQ(tu::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(tu::fixed(-1.0, 0), "-1");
    EXPECT_EQ(tu::fixed(0.999, 1), "1.0");
}

TEST(Format, Scientific) {
    EXPECT_EQ(tu::scientific(1.234e-6, 2), "1.23e-06");
}

TEST(Format, HumanBytes) {
    EXPECT_EQ(tu::human_bytes(512), "512 B");
    EXPECT_EQ(tu::human_bytes(1024), "1.00 KiB");
    EXPECT_EQ(tu::human_bytes(86u * 1024 * 1024), "86.00 MiB");
    EXPECT_EQ(tu::human_bytes(1ull << 30), "1.00 GiB");
}

TEST(Format, SpeedupPercent) {
    // The paper's convention: 1.19x speedup prints as "19%", 4.53x as "453%".
    EXPECT_EQ(tu::speedup_percent(1.19), "19%");
    EXPECT_EQ(tu::speedup_percent(4.53), "353%");
    EXPECT_EQ(tu::speedup_percent(1.0), "0%");
}

TEST(Format, Money) {
    EXPECT_EQ(tu::money(223.22), "$223.22");
    EXPECT_EQ(tu::money(1950.534), "$1,950.53");
    EXPECT_EQ(tu::money(1234567.0), "$1,234,567.00");
    EXPECT_EQ(tu::money(-5.5), "-$5.50");
}

TEST(Table, RendersAlignedColumns) {
    tu::TextTable t("Title");
    t.set_header({"Arch", "Min", "Full"});
    t.add_row({"Haswell", "26.3", "31.3"});
    t.add_row({"TITAN X", "2.8", "12.7"});
    const std::string s = t.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("Haswell"), std::string::npos);
    // Every rendered body line has the same width.
    std::istringstream is(s);
    std::string line;
    std::getline(is, line);  // title
    std::size_t w = 0;
    while (std::getline(is, line)) {
        if (w == 0) w = line.size();
        EXPECT_EQ(line.size(), w) << "ragged table line: " << line;
    }
}

TEST(Table, PadsShortRows) {
    tu::TextTable t;
    t.set_header({"a", "b", "c"});
    t.add_row({"only-one"});
    EXPECT_NO_THROW({ const auto s = t.str(); (void)s; });
    EXPECT_EQ(t.row_count(), 1u);
}

TEST(Cli, ParsesOptionsAndFlags) {
    tu::ArgParser p("prog", "test");
    p.add_flag("verbose", "be chatty");
    p.add_option("n", "count", "7");
    p.add_option("x", "value", "1.5");
    const char* argv[] = {"prog", "--verbose", "--n", "42", "--x=2.25"};
    ASSERT_TRUE(p.parse(5, argv));
    EXPECT_TRUE(p.get_flag("verbose"));
    EXPECT_EQ(p.get_int("n"), 42);
    EXPECT_DOUBLE_EQ(p.get_double("x"), 2.25);
}

TEST(Cli, DefaultsApply) {
    tu::ArgParser p("prog", "test");
    p.add_option("n", "count", "7");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(p.parse(1, argv));
    EXPECT_EQ(p.get_int("n"), 7);
}

TEST(Cli, RejectsUnknownOption) {
    tu::ArgParser p("prog", "test");
    const char* argv[] = {"prog", "--nope", "1"};
    EXPECT_FALSE(p.parse(3, argv));
}

TEST(Cli, MissingValueFails) {
    tu::ArgParser p("prog", "test");
    p.add_option("n", "count", "7");
    const char* argv[] = {"prog", "--n"};
    EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, NonNumericValueNamesTheOption) {
    tu::ArgParser p("prog", "test");
    p.add_option("n", "count", "7");
    p.add_option("x", "value", "1.5");
    const char* argv[] = {"prog", "--n", "abc", "--x", "1.5zzz"};
    ASSERT_TRUE(p.parse(5, argv));
    // A raw std::stoi would terminate with an opaque what() of "stoi";
    // the parser wraps it into a message naming the flag and the value.
    try {
        (void)p.get_int("n");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("abc"), std::string::npos);
    }
    EXPECT_THROW((void)p.get_double("x"), std::invalid_argument);
}

TEST(Cli, TypedOptionsValidateAtParseTime) {
    // Regression: `--threads=1e99` used to sail through parse() and then
    // std::stoi's out_of_range escaped the typed getter, killing the
    // program via std::terminate. Typed registration rejects it at parse.
    tu::ArgParser p("prog", "test");
    p.add_int_option("threads", "count", "0");
    p.add_double_option("courant", "CFL", "0.2");
    {
        const char* argv[] = {"prog", "--threads=1e99"};
        EXPECT_FALSE(p.parse(2, argv));
    }
    {
        const char* argv[] = {"prog", "--threads", "abc"};
        EXPECT_FALSE(p.parse(3, argv));
    }
    {
        const char* argv[] = {"prog", "--threads", "99999999999999999999"};
        EXPECT_FALSE(p.parse(3, argv));
    }
    {
        const char* argv[] = {"prog", "--threads=4", "--courant=0.5zzz"};
        EXPECT_FALSE(p.parse(3, argv));
    }
    {
        const char* argv[] = {"prog", "--threads=4", "--courant=2.5e-1"};
        ASSERT_TRUE(p.parse(3, argv));
        EXPECT_EQ(p.get_int("threads"), 4);
        EXPECT_DOUBLE_EQ(p.get_double("courant"), 0.25);
    }
}

TEST(Cli, TypedOptionsValidateDefaultsToo) {
    // A malformed default is a programming error; catch it on the first
    // parse() during development, not at the first get_int() in a branch
    // that may rarely run.
    tu::ArgParser p("prog", "test");
    p.add_int_option("n", "count", "not-a-number");
    const char* argv[] = {"prog"};
    EXPECT_FALSE(p.parse(1, argv));
}

TEST(Csv, RoundTripsValues) {
    const std::string path = "/tmp/tp_test_csv.csv";
    {
        tu::CsvWriter w(path, {"x", "y"});
        w.write_row({1.0, 0.1});
        w.write_row({2.0, 1e-17});
        ASSERT_TRUE(w.ok());
    }
    std::ifstream in(path);
    std::string header, r1, r2;
    std::getline(in, header);
    std::getline(in, r1);
    std::getline(in, r2);
    EXPECT_EQ(header, "x,y");
    EXPECT_NE(r1.find("0.1"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Csv, RejectsRaggedRow) {
    const std::string path = "/tmp/tp_test_csv2.csv";
    tu::CsvWriter w(path, {"a", "b"});
    EXPECT_THROW(w.write_row({1.0}), std::invalid_argument);
    std::filesystem::remove(path);
}

TEST(Rng, DeterministicForSeed) {
    tu::Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
    tu::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, RoughlyUniformMean) {
    tu::Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += r.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}
