// Tests for the offline metrics analyzer (obs/report.hpp) that backs
// tools/tp_report: stream digestion (manifest/step/numerics records,
// crash-truncated tails, unknown types), the per-phase rollup, and the
// baseline-vs-candidate regression gate with its three thresholds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/numerics.hpp"
#include "obs/report.hpp"

namespace report = tp::obs::report;
namespace json = tp::obs::json;
namespace obs = tp::obs;

namespace {

std::string manifest_line() {
    return json::Object()
        .field("type", "manifest")
        .field("program", "dam_break")
        .field("precision", "mixed")
        .field("grid", "32")
        .str();
}

std::string step_line(double wall_s, double rezone_s, double flux_s,
                      int rezones = 0) {
    const std::string phases = json::Object()
                                   .field("finite_diff", flux_s)
                                   .field("rezone", rezone_s)
                                   .field("rezone_remap", rezone_s * 0.5)
                                   .str();
    return json::Object()
        .field("type", "step")
        .field("t", 0.1)
        .field("dt", 0.01)
        .field("wall_s", wall_s)
        .field("rezones", rezones)
        .field("flops", std::uint64_t{1000})
        .field_raw("phase_seconds", phases)
        .str();
}

std::string numerics_line(const std::string& kernel,
                          const std::string& array, std::uint64_t max_ulp) {
    obs::DivergenceStats s;
    s.samples = 100;
    s.exact = 90;
    s.max_ulp = max_ulp;
    s.sum_ulp = static_cast<double>(max_ulp) * 10.0;
    s.max_rel = 1e-7;
    s.rel_hist[0] = 100;
    return obs::numerics_record_json(kernel, array, s);
}

// ------------------------------------------------------------- summarize

TEST(Summarize, DigestsManifestStepsAndNumerics) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.010, 0.002, 0.006, 1),
         step_line(0.020, 0.002, 0.006, 0),
         numerics_line("clamr.flux_sweep", "dh", 3)});
    EXPECT_EQ(run.program, "dam_break");
    EXPECT_EQ(run.manifest.at("precision"), "mixed");
    EXPECT_EQ(run.steps, 2);
    EXPECT_DOUBLE_EQ(run.wall_s_total, 0.030);
    EXPECT_DOUBLE_EQ(run.mean_step_wall_s(), 0.015);
    EXPECT_EQ(run.rezones, 1);
    EXPECT_DOUBLE_EQ(run.phase_seconds.at("finite_diff"), 0.012);
    ASSERT_EQ(run.numerics.count("clamr.flux_sweep/dh"), 1u);
    EXPECT_EQ(run.numerics.at("clamr.flux_sweep/dh").max_ulp, 3u);
    EXPECT_EQ(run.invalid_lines, 0);
    EXPECT_EQ(run.unknown_records, 0);
}

TEST(Summarize, ToleratesCrashTruncatedTailAndUnknownTypes) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.01, 0.0, 0.01),
         "{\"type\":\"wibble\",\"x\":1}", "{\"type\":\"step\",\"t\":0.2,"});
    EXPECT_EQ(run.steps, 1);
    EXPECT_EQ(run.unknown_records, 1);
    EXPECT_EQ(run.invalid_lines, 1);
}

TEST(Summarize, EmptyStreamYieldsEmptySummary) {
    const report::RunSummary run = report::summarize({});
    EXPECT_EQ(run.steps, 0);
    EXPECT_EQ(run.mean_step_wall_s(), 0.0);
    EXPECT_EQ(run.rezone_share(), 0.0);
    EXPECT_TRUE(report::phase_rollup(run).empty());
}

TEST(Summarize, NullMaxRelMarksInfiniteDivergence) {
    obs::DivergenceStats s;
    s.observe(1.0f, 0.0);  // rel = inf -> null in the record
    const report::RunSummary run =
        report::summarize({obs::numerics_record_json("k", "a", s)});
    ASSERT_EQ(run.numerics.count("k/a"), 1u);
    EXPECT_FALSE(run.numerics.at("k/a").max_rel_finite);
}

// ---------------------------------------------------------- phase rollup

TEST(PhaseRollup, SubPhasesNestAndSharesExcludeThem) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.01, 0.002, 0.006)});
    // rezone_share denominator is finite_diff + rezone (rezone_remap is a
    // sub-phase of rezone and must not double count).
    EXPECT_NEAR(run.rezone_share(), 0.002 / 0.008, 1e-12);
    const auto rows = report::phase_rollup(run);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].phase, "finite_diff");
    EXPECT_FALSE(rows[0].sub_phase);
    EXPECT_EQ(rows[1].phase, "rezone");
    EXPECT_EQ(rows[2].phase, "rezone_remap");
    EXPECT_TRUE(rows[2].sub_phase);
    EXPECT_NEAR(rows[0].share + rows[1].share, 1.0, 1e-12);
}

// ------------------------------------------------------------------ diff

report::RunSummary baseline_run() {
    return report::summarize({manifest_line(),
                              step_line(0.010, 0.001, 0.008),
                              step_line(0.010, 0.001, 0.008),
                              numerics_line("clamr.flux_sweep", "dh", 10)});
}

TEST(Diff, IdenticalRunsPass) {
    const auto base = baseline_run();
    const auto diff = report::diff_runs(base, base, {});
    EXPECT_TRUE(diff.ok()) << (diff.regressions.empty()
                                   ? ""
                                   : diff.regressions[0].metric);
}

TEST(Diff, StepTimeRegressionPastThresholdFails) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.013, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 10)});
    report::Thresholds t;
    t.step_time_frac = 0.20;
    const auto diff = report::diff_runs(base, cand, t);
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "mean_step_wall_s");
    // +30% fails the 20% gate but passes a 50% one.
    t.step_time_frac = 0.50;
    EXPECT_TRUE(report::diff_runs(base, cand, t).ok());
}

TEST(Diff, UlpDriftPastFactorFails) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 21)});  // > 2 x 10
    const auto diff = report::diff_runs(base, cand, {});
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "max_ulp[clamr.flux_sweep/dh]");
    EXPECT_EQ(diff.regressions[0].baseline, 10.0);
    EXPECT_EQ(diff.regressions[0].candidate, 21.0);
    // Exactly 2x is allowed.
    const auto cand2x = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 20)});
    EXPECT_TRUE(report::diff_runs(base, cand2x, {}).ok());
}

TEST(Diff, NewDriftWhereBaselineWasExactFails) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 0)});
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 1)});
    EXPECT_FALSE(report::diff_runs(base, cand, {}).ok());
}

TEST(Diff, RezoneShareGrowthPastPointsFails) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.009)});  // 10% share
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.003, 0.007)});  // 30% share
    report::Thresholds t;
    t.rezone_share_pts = 0.10;
    const auto diff = report::diff_runs(base, cand, t);
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "rezone_share");
    t.rezone_share_pts = 0.25;
    EXPECT_TRUE(report::diff_runs(base, cand, t).ok());
}

TEST(Diff, KernelAsymmetryIsANoteNotARegression) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 10),
         numerics_line("sem.rhs", "rho", 5)});
    const auto diff = report::diff_runs(base, cand, {});
    EXPECT_TRUE(diff.ok());
    ASSERT_FALSE(diff.notes.empty());
    EXPECT_NE(diff.notes[0].find("sem.rhs/rho"), std::string::npos);
}

TEST(Diff, MissingWallSecondsSkipsStepTimeWithNote) {
    // Baseline steps carry phase timings (so the rezone-share gate is
    // comparable) but no wall_s — the step-time gate must skip, not trip.
    const std::string phases =
        json::Object().field("finite_diff", 0.008).field("rezone", 0.001)
            .str();
    const auto base = report::summarize(
        {manifest_line(), json::Object()
                              .field("type", "step")
                              .field("t", 0.1)
                              .field_raw("phase_seconds", phases)
                              .str(),
         numerics_line("clamr.flux_sweep", "dh", 10)});
    const auto cand = baseline_run();
    const auto diff = report::diff_runs(base, cand, {});
    EXPECT_TRUE(diff.ok());
    bool noted = false;
    for (const auto& note : diff.notes)
        if (note.find("wall_s") != std::string::npos) noted = true;
    EXPECT_TRUE(noted);
}

// ---------------------------------------------- dist digestion + critical path

// One {"type":"dist"} record. Per-rank compute seconds come from
// `compute`, per-rank wait from `wait`; post/interior/boundary are folded
// into compute via the post_s array to keep the arithmetic transparent.
std::string dist_line(const std::vector<double>& compute,
                      const std::vector<double>& wait,
                      std::int64_t resplits = 0, int step = 1) {
    auto arr = [](const std::vector<double>& v) {
        std::string out = "[";
        for (std::size_t i = 0; i < v.size(); ++i) {
            if (i != 0) out.push_back(',');
            json::append_number(out, v[i]);
        }
        out.push_back(']');
        return out;
    };
    const std::vector<double> zero(compute.size(), 0.0);
    std::string bytes = "[";
    for (std::size_t i = 0; i < compute.size(); ++i) {
        if (i != 0) bytes.push_back(',');
        bytes += "1000";
    }
    bytes.push_back(']');
    double wall = 0.0;
    for (std::size_t r = 0; r < compute.size(); ++r)
        wall = std::max(wall, compute[r] + wait[r]);
    return json::Object()
        .field("type", "dist")
        .field("step", step)
        .field("ranks", static_cast<std::int64_t>(compute.size()))
        .field("wall_s", wall)
        .field_raw("post_s", arr(compute))
        .field_raw("precompute_s", arr(zero))
        .field_raw("interior_s", arr(zero))
        .field_raw("wait_s", arr(wait))
        .field_raw("boundary_s", arr(zero))
        .field_raw("halo_bytes", bytes)
        .field("resplits", resplits)
        .str();
}

TEST(Summarize, DigestsDistAndTraceRecords) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         dist_line({0.004, 0.002}, {0.0, 0.001}),
         json::Object()
             .field("type", "trace")
             .field("events", std::uint64_t{42})
             .field("dropped", std::uint64_t{7})
             .str()});
    ASSERT_EQ(run.dist_steps.size(), 1u);
    EXPECT_EQ(run.dist_steps[0].ranks(), 2);
    EXPECT_DOUBLE_EQ(run.dist_steps[0].compute(0), 0.004);
    EXPECT_DOUBLE_EQ(run.dist_steps[0].total(1), 0.003);
    EXPECT_EQ(run.dist_steps[0].halo_bytes[0], 1000u);
    EXPECT_TRUE(run.has_trace_record);
    EXPECT_EQ(run.trace_events, 42u);
    EXPECT_EQ(run.trace_dropped_events, 7u);
    EXPECT_EQ(run.unknown_records, 0);
}

TEST(CriticalPath, SharesSumToOneAndNameTheStraggler) {
    // Rank 0 bounds every step: compute {4,2} ms, wait {0,1} ms.
    // Per step: T = 4 ms, mean compute = 3 ms, mean wait = 0.5 ms,
    // imbalance = 4 - 3.5 = 0.5 ms.
    const report::RunSummary run = report::summarize(
        {manifest_line(), dist_line({0.004, 0.002}, {0.0, 0.001}, 0, 1),
         dist_line({0.004, 0.002}, {0.0, 0.001}, 0, 2)});
    const auto cp = report::critical_path(run);
    ASSERT_FALSE(cp.empty());
    EXPECT_EQ(cp.steps, 2);
    EXPECT_EQ(cp.ranks, 2);
    EXPECT_NEAR(cp.attributed_s, 0.008, 1e-12);
    EXPECT_NEAR(cp.compute_share, 0.003 / 0.004, 1e-12);
    EXPECT_NEAR(cp.wait_share, 0.0005 / 0.004, 1e-12);
    EXPECT_NEAR(cp.imbalance_share, 0.0005 / 0.004, 1e-12);
    EXPECT_NEAR(
        cp.compute_share + cp.wait_share + cp.imbalance_share, 1.0, 1e-12);
    EXPECT_EQ(cp.straggler_rank, 0);
    ASSERT_EQ(cp.per_rank.size(), 2u);
    EXPECT_EQ(cp.per_rank[0].straggler_steps, 2);
    EXPECT_EQ(cp.per_rank[1].straggler_steps, 0);
    EXPECT_EQ(cp.per_rank[0].halo_bytes, 2000u);
}

TEST(CriticalPath, ResplitSplitsTheImbalanceWindows) {
    // Imbalanced before the re-split, perfectly balanced from it onward
    // (the re-split runs at the head of its step, so that step counts as
    // "after").
    const report::RunSummary run = report::summarize(
        {manifest_line(), dist_line({0.004, 0.002}, {0.0, 0.0}, 0, 1),
         dist_line({0.003, 0.003}, {0.0, 0.0}, 1, 2),
         dist_line({0.003, 0.003}, {0.0, 0.0}, 0, 3)});
    const auto cp = report::critical_path(run);
    EXPECT_EQ(cp.resplit_steps, 1);
    EXPECT_NEAR(cp.imbalance_share_before, 0.001 / 0.004, 1e-12);
    EXPECT_NEAR(cp.imbalance_share_after, 0.0, 1e-12);
}

TEST(CriticalPath, SkipsMalformedRecordsAndEmptyRuns) {
    EXPECT_TRUE(report::critical_path(report::summarize({})).empty());
    // A record whose arrays disagree with the run's rank count is skipped
    // by the analyzer; the valid one still contributes.
    const report::RunSummary run = report::summarize(
        {manifest_line(), dist_line({0.004, 0.002}, {0.0, 0.0}),
         "{\"type\":\"dist\",\"step\":2,\"ranks\":2,\"wall_s\":0.1,"
         "\"post_s\":[0.1],\"precompute_s\":[0.1],\"interior_s\":[0.1],"
         "\"wait_s\":[0.1],\"boundary_s\":[0.1],\"halo_bytes\":[1],"
         "\"resplits\":0}"});
    const auto cp = report::critical_path(run);
    EXPECT_EQ(cp.steps, 1);
}

TEST(PhaseRollup, SelfTimeExcludesDirectChildren) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.01, 0.002, 0.006)});
    const auto rows = report::phase_rollup(run);
    ASSERT_EQ(rows.size(), 3u);
    // rezone: 0.002 inclusive, child rezone_remap 0.001 -> self 0.001.
    EXPECT_EQ(rows[1].phase, "rezone");
    EXPECT_NEAR(rows[1].self_seconds, 0.001, 1e-12);
    // Leaves keep self == inclusive.
    EXPECT_NEAR(rows[0].self_seconds, rows[0].seconds, 1e-12);
    EXPECT_NEAR(rows[2].self_seconds, rows[2].seconds, 1e-12);
}

TEST(Diff, ImbalanceShareGrowthPastPointsFails) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         dist_line({0.003, 0.003}, {0.0, 0.0})});  // balanced
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         dist_line({0.006, 0.002}, {0.0, 0.0})});  // imbalance 1/3
    report::Thresholds t;
    t.imbalance_share_pts = 0.15;
    const auto diff = report::diff_runs(base, cand, t);
    bool found = false;
    for (const auto& r : diff.regressions)
        if (r.metric == "dist_imbalance_share") found = true;
    EXPECT_TRUE(found);
    // Inside the allowance it passes.
    report::Thresholds loose;
    loose.imbalance_share_pts = 0.50;
    EXPECT_TRUE(report::diff_runs(base, cand, loose).ok());
}

TEST(Diff, HaloByteDriftIsARegressionWhenComparable) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         dist_line({0.003, 0.003}, {0.0, 0.0})});
    // Same shape, same (zero) resplits, different bytes: deterministic
    // traffic changed -> regression.
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         "{\"type\":\"dist\",\"step\":1,\"ranks\":2,\"wall_s\":0.003,"
         "\"post_s\":[0.003,0.003],\"precompute_s\":[0,0],"
         "\"interior_s\":[0,0],\"wait_s\":[0,0],\"boundary_s\":[0,0],"
         "\"halo_bytes\":[1000,999],\"resplits\":0}"});
    const auto diff = report::diff_runs(base, cand, {});
    bool found = false;
    for (const auto& r : diff.regressions)
        if (r.metric == "dist_halo_bytes") found = true;
    EXPECT_TRUE(found);

    // A resplit-count mismatch makes byte totals legitimately diverge
    // (block-solver traffic depends on the partition) -> note, not gate.
    const auto resplit_cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         "{\"type\":\"dist\",\"step\":1,\"ranks\":2,\"wall_s\":0.003,"
         "\"post_s\":[0.003,0.003],\"precompute_s\":[0,0],"
         "\"interior_s\":[0,0],\"wait_s\":[0,0],\"boundary_s\":[0,0],"
         "\"halo_bytes\":[1000,999],\"resplits\":1}"});
    const auto skipped = report::diff_runs(base, resplit_cand, {});
    for (const auto& r : skipped.regressions)
        EXPECT_NE(r.metric, "dist_halo_bytes");
}

TEST(Diff, DistPresentInOnlyOneRunIsANote) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         dist_line({0.003, 0.003}, {0.0, 0.0})});
    const auto diff = report::diff_runs(base, cand, {});
    EXPECT_TRUE(diff.ok());
    bool noted = false;
    for (const auto& note : diff.notes)
        if (note.find("dist") != std::string::npos) noted = true;
    EXPECT_TRUE(noted);
}

TEST(Diff, InfiniteMaxRelAppearingIsARegression) {
    obs::DivergenceStats inf_stats;
    inf_stats.observe(1.0f, 0.0);
    const auto base = baseline_run();
    auto cand_lines = std::vector<std::string>{
        manifest_line(), step_line(0.010, 0.001, 0.008),
        obs::numerics_record_json("clamr.flux_sweep", "dh", inf_stats)};
    const auto cand = report::summarize(cand_lines);
    // max_ulp also regressed here (inf observation counts ULPs), so just
    // assert the infinite-rel regression is among them.
    const auto diff = report::diff_runs(base, cand, {});
    bool found = false;
    for (const auto& r : diff.regressions)
        if (r.metric.find("became infinite") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

}  // namespace
