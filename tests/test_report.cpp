// Tests for the offline metrics analyzer (obs/report.hpp) that backs
// tools/tp_report: stream digestion (manifest/step/numerics records,
// crash-truncated tails, unknown types), the per-phase rollup, and the
// baseline-vs-candidate regression gate with its three thresholds.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/numerics.hpp"
#include "obs/report.hpp"

namespace report = tp::obs::report;
namespace json = tp::obs::json;
namespace obs = tp::obs;

namespace {

std::string manifest_line() {
    return json::Object()
        .field("type", "manifest")
        .field("program", "dam_break")
        .field("precision", "mixed")
        .field("grid", "32")
        .str();
}

std::string step_line(double wall_s, double rezone_s, double flux_s,
                      int rezones = 0) {
    const std::string phases = json::Object()
                                   .field("finite_diff", flux_s)
                                   .field("rezone", rezone_s)
                                   .field("rezone_remap", rezone_s * 0.5)
                                   .str();
    return json::Object()
        .field("type", "step")
        .field("t", 0.1)
        .field("dt", 0.01)
        .field("wall_s", wall_s)
        .field("rezones", rezones)
        .field("flops", std::uint64_t{1000})
        .field_raw("phase_seconds", phases)
        .str();
}

std::string numerics_line(const std::string& kernel,
                          const std::string& array, std::uint64_t max_ulp) {
    obs::DivergenceStats s;
    s.samples = 100;
    s.exact = 90;
    s.max_ulp = max_ulp;
    s.sum_ulp = static_cast<double>(max_ulp) * 10.0;
    s.max_rel = 1e-7;
    s.rel_hist[0] = 100;
    return obs::numerics_record_json(kernel, array, s);
}

// ------------------------------------------------------------- summarize

TEST(Summarize, DigestsManifestStepsAndNumerics) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.010, 0.002, 0.006, 1),
         step_line(0.020, 0.002, 0.006, 0),
         numerics_line("clamr.flux_sweep", "dh", 3)});
    EXPECT_EQ(run.program, "dam_break");
    EXPECT_EQ(run.manifest.at("precision"), "mixed");
    EXPECT_EQ(run.steps, 2);
    EXPECT_DOUBLE_EQ(run.wall_s_total, 0.030);
    EXPECT_DOUBLE_EQ(run.mean_step_wall_s(), 0.015);
    EXPECT_EQ(run.rezones, 1);
    EXPECT_DOUBLE_EQ(run.phase_seconds.at("finite_diff"), 0.012);
    ASSERT_EQ(run.numerics.count("clamr.flux_sweep/dh"), 1u);
    EXPECT_EQ(run.numerics.at("clamr.flux_sweep/dh").max_ulp, 3u);
    EXPECT_EQ(run.invalid_lines, 0);
    EXPECT_EQ(run.unknown_records, 0);
}

TEST(Summarize, ToleratesCrashTruncatedTailAndUnknownTypes) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.01, 0.0, 0.01),
         "{\"type\":\"wibble\",\"x\":1}", "{\"type\":\"step\",\"t\":0.2,"});
    EXPECT_EQ(run.steps, 1);
    EXPECT_EQ(run.unknown_records, 1);
    EXPECT_EQ(run.invalid_lines, 1);
}

TEST(Summarize, EmptyStreamYieldsEmptySummary) {
    const report::RunSummary run = report::summarize({});
    EXPECT_EQ(run.steps, 0);
    EXPECT_EQ(run.mean_step_wall_s(), 0.0);
    EXPECT_EQ(run.rezone_share(), 0.0);
    EXPECT_TRUE(report::phase_rollup(run).empty());
}

TEST(Summarize, NullMaxRelMarksInfiniteDivergence) {
    obs::DivergenceStats s;
    s.observe(1.0f, 0.0);  // rel = inf -> null in the record
    const report::RunSummary run =
        report::summarize({obs::numerics_record_json("k", "a", s)});
    ASSERT_EQ(run.numerics.count("k/a"), 1u);
    EXPECT_FALSE(run.numerics.at("k/a").max_rel_finite);
}

// ---------------------------------------------------------- phase rollup

TEST(PhaseRollup, SubPhasesNestAndSharesExcludeThem) {
    const report::RunSummary run = report::summarize(
        {manifest_line(), step_line(0.01, 0.002, 0.006)});
    // rezone_share denominator is finite_diff + rezone (rezone_remap is a
    // sub-phase of rezone and must not double count).
    EXPECT_NEAR(run.rezone_share(), 0.002 / 0.008, 1e-12);
    const auto rows = report::phase_rollup(run);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].phase, "finite_diff");
    EXPECT_FALSE(rows[0].sub_phase);
    EXPECT_EQ(rows[1].phase, "rezone");
    EXPECT_EQ(rows[2].phase, "rezone_remap");
    EXPECT_TRUE(rows[2].sub_phase);
    EXPECT_NEAR(rows[0].share + rows[1].share, 1.0, 1e-12);
}

// ------------------------------------------------------------------ diff

report::RunSummary baseline_run() {
    return report::summarize({manifest_line(),
                              step_line(0.010, 0.001, 0.008),
                              step_line(0.010, 0.001, 0.008),
                              numerics_line("clamr.flux_sweep", "dh", 10)});
}

TEST(Diff, IdenticalRunsPass) {
    const auto base = baseline_run();
    const auto diff = report::diff_runs(base, base, {});
    EXPECT_TRUE(diff.ok()) << (diff.regressions.empty()
                                   ? ""
                                   : diff.regressions[0].metric);
}

TEST(Diff, StepTimeRegressionPastThresholdFails) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.013, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 10)});
    report::Thresholds t;
    t.step_time_frac = 0.20;
    const auto diff = report::diff_runs(base, cand, t);
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "mean_step_wall_s");
    // +30% fails the 20% gate but passes a 50% one.
    t.step_time_frac = 0.50;
    EXPECT_TRUE(report::diff_runs(base, cand, t).ok());
}

TEST(Diff, UlpDriftPastFactorFails) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 21)});  // > 2 x 10
    const auto diff = report::diff_runs(base, cand, {});
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "max_ulp[clamr.flux_sweep/dh]");
    EXPECT_EQ(diff.regressions[0].baseline, 10.0);
    EXPECT_EQ(diff.regressions[0].candidate, 21.0);
    // Exactly 2x is allowed.
    const auto cand2x = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 20)});
    EXPECT_TRUE(report::diff_runs(base, cand2x, {}).ok());
}

TEST(Diff, NewDriftWhereBaselineWasExactFails) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 0)});
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 1)});
    EXPECT_FALSE(report::diff_runs(base, cand, {}).ok());
}

TEST(Diff, RezoneShareGrowthPastPointsFails) {
    const auto base = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.009)});  // 10% share
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.003, 0.007)});  // 30% share
    report::Thresholds t;
    t.rezone_share_pts = 0.10;
    const auto diff = report::diff_runs(base, cand, t);
    ASSERT_FALSE(diff.ok());
    EXPECT_EQ(diff.regressions[0].metric, "rezone_share");
    t.rezone_share_pts = 0.25;
    EXPECT_TRUE(report::diff_runs(base, cand, t).ok());
}

TEST(Diff, KernelAsymmetryIsANoteNotARegression) {
    const auto base = baseline_run();
    const auto cand = report::summarize(
        {manifest_line(), step_line(0.010, 0.001, 0.008),
         numerics_line("clamr.flux_sweep", "dh", 10),
         numerics_line("sem.rhs", "rho", 5)});
    const auto diff = report::diff_runs(base, cand, {});
    EXPECT_TRUE(diff.ok());
    ASSERT_FALSE(diff.notes.empty());
    EXPECT_NE(diff.notes[0].find("sem.rhs/rho"), std::string::npos);
}

TEST(Diff, MissingWallSecondsSkipsStepTimeWithNote) {
    // Baseline steps carry phase timings (so the rezone-share gate is
    // comparable) but no wall_s — the step-time gate must skip, not trip.
    const std::string phases =
        json::Object().field("finite_diff", 0.008).field("rezone", 0.001)
            .str();
    const auto base = report::summarize(
        {manifest_line(), json::Object()
                              .field("type", "step")
                              .field("t", 0.1)
                              .field_raw("phase_seconds", phases)
                              .str(),
         numerics_line("clamr.flux_sweep", "dh", 10)});
    const auto cand = baseline_run();
    const auto diff = report::diff_runs(base, cand, {});
    EXPECT_TRUE(diff.ok());
    bool noted = false;
    for (const auto& note : diff.notes)
        if (note.find("wall_s") != std::string::npos) noted = true;
    EXPECT_TRUE(noted);
}

TEST(Diff, InfiniteMaxRelAppearingIsARegression) {
    obs::DivergenceStats inf_stats;
    inf_stats.observe(1.0f, 0.0);
    const auto base = baseline_run();
    auto cand_lines = std::vector<std::string>{
        manifest_line(), step_line(0.010, 0.001, 0.008),
        obs::numerics_record_json("clamr.flux_sweep", "dh", inf_stats)};
    const auto cand = report::summarize(cand_lines);
    // max_ulp also regressed here (inf observation counts ULPs), so just
    // assert the infinite-rel regression is among them.
    const auto diff = report::diff_runs(base, cand, {});
    bool found = false;
    for (const auto& r : diff.regressions)
        if (r.metric.find("became infinite") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);
}

}  // namespace
