#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fp/governor.hpp"
#include "obs/json.hpp"
#include "sem/dgsem.hpp"
#include "shallow/solver.hpp"

using namespace tp;

namespace {

// Synthetic float-lattice telemetry: `max_ulp` drift, all samples in the
// finest relative-error bucket (no tail).
obs::DivergenceStats drift(std::uint64_t max_ulp,
                           std::uint64_t samples = 100) {
    obs::DivergenceStats s;
    s.samples = samples;
    s.max_ulp = max_ulp;
    s.sum_ulp = static_cast<double>(max_ulp * samples);
    s.exact = max_ulp == 0 ? samples : 0;
    s.rel_hist[0] = samples;
    return s;
}

// Telemetry whose ULP drift is negligible but whose relative-error tail
// (the top histogram bucket, >= 10^-6) holds `tail` of `samples`.
obs::DivergenceStats tailed(std::uint64_t tail, std::uint64_t samples) {
    obs::DivergenceStats s;
    s.samples = samples;
    s.max_ulp = 1;
    s.sum_ulp = static_cast<double>(samples);
    s.rel_hist[fp::kRelHistBuckets - 1] = tail;
    s.rel_hist[0] = samples - tail;
    return s;
}

fp::GovernorConfig enabled_config() {
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = 10;
    cfg.tail_budget_frac = 0.01;
    cfg.hysteresis = 3;
    cfg.warmup = 2;
    return cfg;
}

}  // namespace

// ------------------------------------------------------------- unit loop

TEST(Governor, StartsReducedAndRegistrationIsIdempotent) {
    fp::PrecisionGovernor gov(enabled_config());
    const int id = gov.register_kernel("clamr.flux_sweep");
    EXPECT_TRUE(gov.reduced(id));
    EXPECT_EQ(gov.register_kernel("clamr.flux_sweep"), id);
    EXPECT_NE(gov.register_kernel("sem.rhs"), id);
}

TEST(Governor, StaysDemotedUnderBudget) {
    fp::PrecisionGovernor gov(enabled_config());
    const int id = gov.register_kernel("k");
    for (int step = 1; step <= 20; ++step) {
        gov.observe(id, drift(10));  // exactly at budget, never over
        gov.end_step(step);
    }
    EXPECT_TRUE(gov.reduced(id));
    EXPECT_TRUE(gov.decisions().empty());
    EXPECT_EQ(gov.reduced_steps(id), 20u);
    EXPECT_EQ(gov.observed_steps(id), 20u);
}

TEST(Governor, PromotesOnUlpDriftAfterWarmup) {
    fp::PrecisionGovernor gov(enabled_config());  // warmup = 2
    const int id = gov.register_kernel("k");
    for (int step = 1; step <= 2; ++step) {
        gov.observe(id, drift(50));
        gov.end_step(step);
        EXPECT_TRUE(gov.reduced(id)) << "promoted during warmup";
    }
    gov.observe(id, drift(50));
    gov.end_step(3);
    EXPECT_FALSE(gov.reduced(id));
    ASSERT_EQ(gov.decisions().size(), 1u);
    EXPECT_EQ(gov.decisions()[0].action, "promote");
    EXPECT_EQ(gov.decisions()[0].step, 3);
    EXPECT_EQ(gov.decisions()[0].max_ulp, 50u);
}

TEST(Governor, PromotesOnRelativeErrorTail) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.drift_budget_ulp = 1000000;  // the tail must trigger on its own
    cfg.warmup = 0;
    fp::PrecisionGovernor gov(cfg);
    const int id = gov.register_kernel("k");
    gov.observe(id, tailed(2, 200));  // 1% tail: at budget, clean
    gov.end_step(1);
    EXPECT_TRUE(gov.reduced(id));
    gov.observe(id, tailed(5, 200));  // 2.5% tail: over budget
    gov.end_step(2);
    EXPECT_FALSE(gov.reduced(id));
    ASSERT_EQ(gov.decisions().size(), 1u);
    EXPECT_DOUBLE_EQ(gov.decisions()[0].tail_frac, 5.0 / 200.0);
}

TEST(Governor, TailFractionCountsConfiguredDecades) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.tail_exp = -6;  // top bucket only
    const fp::PrecisionGovernor gov(cfg);
    EXPECT_DOUBLE_EQ(gov.tail_fraction(tailed(3, 300)), 0.01);
    EXPECT_DOUBLE_EQ(gov.tail_fraction(drift(4, 100)), 0.0);
    EXPECT_DOUBLE_EQ(gov.tail_fraction(obs::DivergenceStats{}), 0.0);
}

TEST(Governor, HysteresisDemotesAfterCleanWindow) {
    fp::PrecisionGovernor gov(enabled_config());  // hysteresis = 3
    const int id = gov.register_kernel("k");
    gov.observe(id, drift(50));
    gov.end_step(1);
    gov.observe(id, drift(50));
    gov.end_step(2);
    gov.observe(id, drift(50));
    gov.end_step(3);  // promote
    ASSERT_FALSE(gov.reduced(id));
    for (int step = 4; step <= 5; ++step) {
        gov.observe(id, drift(0));
        gov.end_step(step);
        EXPECT_FALSE(gov.reduced(id)) << "demoted before the window";
    }
    gov.observe(id, drift(0));
    gov.end_step(6);  // third consecutive clean promoted step
    EXPECT_TRUE(gov.reduced(id));
    ASSERT_EQ(gov.decisions().size(), 2u);
    EXPECT_EQ(gov.decisions()[1].action, "demote");
    EXPECT_EQ(gov.decisions()[1].step, 6);
    EXPECT_EQ(gov.decisions()[1].clean_steps, 3);
}

TEST(Governor, NoisyPromotedStepResetsTheCleanWindow) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.warmup = 0;
    cfg.hysteresis = 2;
    fp::PrecisionGovernor gov(cfg);
    const int id = gov.register_kernel("k");
    gov.observe(id, drift(50));
    gov.end_step(1);  // promote
    ASSERT_FALSE(gov.reduced(id));
    gov.observe(id, drift(0));
    gov.end_step(2);  // clean 1/2
    gov.observe(id, drift(50));
    gov.end_step(3);  // noisy: window resets
    gov.observe(id, drift(0));
    gov.end_step(4);  // clean 1/2 again
    EXPECT_FALSE(gov.reduced(id));
    gov.observe(id, drift(0));
    gov.end_step(5);  // clean 2/2: demote
    EXPECT_TRUE(gov.reduced(id));
    ASSERT_EQ(gov.decisions().size(), 2u);
    EXPECT_EQ(gov.decisions()[1].step, 5);
}

TEST(Governor, IdleAndMultiObserveStepsAccumulateCorrectly) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.warmup = 0;
    fp::PrecisionGovernor gov(cfg);
    const int id = gov.register_kernel("k");
    gov.end_step(1);  // no telemetry: the step does not count
    EXPECT_EQ(gov.observed_steps(id), 0u);
    // Two observations in one step (several RK stages) merge before the
    // decision: 6 + 6 ULP stays under the budget of 10.
    gov.observe(id, drift(6));
    gov.observe(id, drift(6));
    gov.end_step(2);
    EXPECT_EQ(gov.observed_steps(id), 1u);
    EXPECT_TRUE(gov.reduced(id));
    // But the merged max-ULP is the max, and a single over-budget stage
    // promotes even if the other stage was clean.
    gov.observe(id, drift(0));
    gov.observe(id, drift(99));
    gov.end_step(3);
    EXPECT_FALSE(gov.reduced(id));
}

TEST(Governor, ReRegistrationResetsKernelState) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.warmup = 0;
    fp::PrecisionGovernor gov(cfg);
    int id = gov.register_kernel("k");
    gov.observe(id, drift(50));
    gov.end_step(1);
    ASSERT_FALSE(gov.reduced(id));
    id = gov.register_kernel("k");  // solver re-attached after re-init
    EXPECT_TRUE(gov.reduced(id));
    EXPECT_EQ(gov.observed_steps(id), 0u);
    EXPECT_EQ(gov.reduced_steps(id), 0u);
}

TEST(Governor, DisabledGovernorNeverDecides) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.enabled = false;
    fp::PrecisionGovernor gov(cfg);
    const int id = gov.register_kernel("k");
    for (int step = 1; step <= 10; ++step) {
        gov.observe(id, drift(1 << 20));
        gov.end_step(step);
    }
    EXPECT_TRUE(gov.reduced(id));
    EXPECT_TRUE(gov.decisions().empty());
}

TEST(Governor, TransitionRecordsAreValidJsonAndReachTheSink) {
    fp::GovernorConfig cfg = enabled_config();
    cfg.warmup = 0;
    cfg.hysteresis = 1;
    fp::PrecisionGovernor gov(cfg);
    std::vector<std::string> lines;
    gov.set_record_sink([&](const std::string& l) { lines.push_back(l); });
    const int id = gov.register_kernel("clamr.flux_sweep");
    gov.observe(id, drift(50));
    gov.end_step(7);  // promote
    gov.observe(id, drift(0));
    gov.end_step(8);  // demote
    ASSERT_EQ(lines.size(), 2u);
    for (const std::string& l : lines) {
        EXPECT_TRUE(obs::json::valid(l)) << l;
        EXPECT_NE(l.find("\"type\":\"governor\""), std::string::npos);
        EXPECT_NE(l.find("\"kernel\":\"clamr.flux_sweep\""),
                  std::string::npos);
        EXPECT_NE(l.find("\"drift_budget_ulp\":10"), std::string::npos);
    }
    EXPECT_NE(lines[0].find("\"action\":\"promote\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"from\":\"float\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"to\":\"double\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"action\":\"demote\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"from\":\"double\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"to\":\"float\""), std::string::npos);
}

// --------------------------------------------- solver integration: CLAMR

namespace {

template <typename P>
std::string clamr_checkpoint(int grid, int levels, simd::Mode mode,
                             shallow::RezoneMode rezone, int steps,
                             fp::PrecisionGovernor* gov) {
    shallow::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, grid, grid, levels};
    cfg.simd = mode;
    cfg.rezone_mode = rezone;
    shallow::ShallowWaterSolver<P> s(cfg);
    if (gov != nullptr) s.set_governor(gov);
    s.initialize_dam_break({});
    for (int i = 0; i < steps; ++i) {
        s.step();
        if (gov != nullptr) gov->end_step(s.step_count());
    }
    std::ostringstream os;
    s.write_checkpoint(os);
    return os.str();
}

template <typename P>
void expect_off_governor_identical() {
    for (const simd::Mode mode : {simd::Mode::Native, simd::Mode::Scalar})
        for (const shallow::RezoneMode rezone :
             {shallow::RezoneMode::Incremental, shallow::RezoneMode::Full})
            for (const int grid : {12, 16}) {
                const int levels = grid == 12 ? 1 : 2;
                const std::string plain = clamr_checkpoint<P>(
                    grid, levels, mode, rezone, 8, nullptr);
                fp::GovernorConfig off;  // enabled = false
                fp::PrecisionGovernor gov(off);
                const std::string governed = clamr_checkpoint<P>(
                    grid, levels, mode, rezone, 8, &gov);
                EXPECT_EQ(governed, plain)
                    << "policy=" << P::name
                    << " simd=" << simd::to_string(mode)
                    << " rezone=" << shallow::rezone_mode_name(rezone)
                    << " grid=" << grid;
            }
}

}  // namespace

// 24 configurations (3 policies x 2 simd x 2 rezone x 2 grids): attaching
// a disabled governor must be bit-invisible — the --governor=off contract.
TEST(GovernorClamr, OffGovernorIsBitInvisibleAcrossConfigs) {
    expect_off_governor_identical<fp::MinimumPrecision>();
    expect_off_governor_identical<fp::MixedPrecision>();
    expect_off_governor_identical<fp::FullPrecision>();
}

// An enabled governor whose budget can never be crossed leaves a
// float-compute policy on its native kernels; the monitor only reads.
TEST(GovernorClamr, UncrossableBudgetIsBitInvisibleOnFloatCompute) {
    const std::string plain = clamr_checkpoint<fp::MinimumPrecision>(
        16, 2, simd::Mode::Native, shallow::RezoneMode::Incremental, 8,
        nullptr);
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = ~std::uint64_t{0};
    cfg.tail_budget_frac = 2.0;
    fp::PrecisionGovernor gov(cfg);
    const std::string governed = clamr_checkpoint<fp::MinimumPrecision>(
        16, 2, simd::Mode::Native, shallow::RezoneMode::Incremental, 8,
        &gov);
    EXPECT_EQ(governed, plain);
    EXPECT_TRUE(gov.decisions().empty());
    EXPECT_EQ(gov.observed_steps(0), 8u);
    EXPECT_EQ(gov.reduced_steps(0), 8u);
}

// A zero budget must drive the full loop on a double-compute policy:
// the demoted float sweep drifts (promote), and the promoted double
// sweep scores zero drift on the float lattice (demote after the
// hysteresis window). The demote is the strong claim — it only happens
// if the promoted kernel reproduces the in-order double shadow
// reference bit-for-bit.
TEST(GovernorClamr, ZeroBudgetDrivesPromoteThenDemote) {
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = 0;
    cfg.tail_budget_frac = 0.0;
    cfg.warmup = 1;
    cfg.hysteresis = 3;
    fp::PrecisionGovernor gov(cfg);
    clamr_checkpoint<fp::MixedPrecision>(16, 2, simd::Mode::Native,
                                         shallow::RezoneMode::Incremental,
                                         12, &gov);
    std::size_t promotes = 0;
    std::size_t demotes = 0;
    for (const auto& d : gov.decisions())
        (d.action == "promote" ? promotes : demotes) += 1;
    EXPECT_GE(promotes, 1u);
    EXPECT_GE(demotes, 1u);
}

// ----------------------------------------------- solver integration: SEM

namespace {

template <typename P>
std::string sem_fingerprint(int steps, fp::PrecisionGovernor* gov) {
    sem::SemConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 2;
    cfg.order = 3;
    sem::SpectralEulerSolver<P> s(cfg);
    if (gov != nullptr) s.set_governor(gov);
    s.initialize_thermal_bubble({});
    for (int i = 0; i < steps; ++i) {
        s.step();
        if (gov != nullptr)
            gov->end_step(static_cast<std::int64_t>(s.step_count()));
    }
    return s.state_fingerprint();
}

}  // namespace

TEST(GovernorSem, OffGovernorIsBitInvisible) {
    const std::string plain_single =
        sem_fingerprint<fp::MinimumPrecision>(8, nullptr);
    const std::string plain_double =
        sem_fingerprint<fp::FullPrecision>(8, nullptr);
    fp::GovernorConfig off;
    fp::PrecisionGovernor gov_single(off);
    fp::PrecisionGovernor gov_double(off);
    EXPECT_EQ(sem_fingerprint<fp::MinimumPrecision>(8, &gov_single),
              plain_single);
    EXPECT_EQ(sem_fingerprint<fp::FullPrecision>(8, &gov_double),
              plain_double);
}

TEST(GovernorSem, UncrossableBudgetIsBitInvisibleOnFloatCompute) {
    const std::string plain =
        sem_fingerprint<fp::MinimumPrecision>(8, nullptr);
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = ~std::uint64_t{0};
    cfg.tail_budget_frac = 2.0;
    fp::PrecisionGovernor gov(cfg);
    EXPECT_EQ(sem_fingerprint<fp::MinimumPrecision>(8, &gov), plain);
    EXPECT_TRUE(gov.decisions().empty());
    EXPECT_EQ(gov.reduced_steps(0), 8u);
}

TEST(GovernorSem, ZeroBudgetDrivesPromoteThenDemote) {
    fp::GovernorConfig cfg;
    cfg.enabled = true;
    cfg.drift_budget_ulp = 0;
    cfg.tail_budget_frac = 0.0;
    cfg.warmup = 1;
    cfg.hysteresis = 3;
    fp::PrecisionGovernor gov(cfg);
    sem_fingerprint<fp::FullPrecision>(12, &gov);
    std::size_t promotes = 0;
    std::size_t demotes = 0;
    for (const auto& d : gov.decisions())
        (d.action == "promote" ? promotes : demotes) += 1;
    EXPECT_GE(promotes, 1u);
    EXPECT_GE(demotes, 1u);
}
