#include <gtest/gtest.h>

#include "tuner/tradespace.hpp"

namespace tt = tp::tuner;

namespace {

tt::SweepConfig tiny_sweep() {
    tt::SweepConfig s;
    s.resolutions = {16, 32};
    s.max_level = 1;
    s.steps = 40;
    return s;
}

tt::Candidate make(tp::fp::PrecisionMode mode, double dx, double digits,
                   double seconds) {
    tt::Candidate c;
    c.mode = mode;
    c.finest_dx = dx;
    c.digits = digits;
    c.projected_seconds = seconds;
    c.energy_joules = seconds * 100.0;
    return c;
}

}  // namespace

TEST(TradeSpace, ExploreCoversGrid) {
    const auto cands = tt::explore(tiny_sweep());
    ASSERT_EQ(cands.size(), 6u);  // 3 precisions x 2 resolutions
    // Full-precision rows carry reference-level digits.
    int fulls = 0;
    for (const auto& c : cands)
        if (c.mode == tp::fp::PrecisionMode::Full) {
            EXPECT_EQ(c.digits, 17.0);
            ++fulls;
        } else {
            EXPECT_GT(c.digits, 2.0);
            EXPECT_LT(c.digits, 17.0);
        }
    EXPECT_EQ(fulls, 2);
    for (const auto& c : cands) {
        EXPECT_GT(c.projected_seconds, 0.0);
        EXPECT_GT(c.energy_joules, c.projected_seconds);  // TDP > 1 W
        EXPECT_GT(c.cells, 0u);
    }
}

TEST(TradeSpace, ReducedPrecisionProjectsFasterAtSameResolution) {
    const auto cands = tt::explore(tiny_sweep());
    for (std::size_t base = 0; base < cands.size(); base += 3) {
        const auto& min = cands[base];
        const auto& full = cands[base + 2];
        ASSERT_EQ(min.mode, tp::fp::PrecisionMode::Minimum);
        ASSERT_EQ(full.mode, tp::fp::PrecisionMode::Full);
        EXPECT_LT(min.projected_seconds, full.projected_seconds);
        EXPECT_LT(min.checkpoint_bytes, full.checkpoint_bytes);
    }
}

TEST(TradeSpace, SelectPrefersFinestFeasible) {
    const std::vector<tt::Candidate> cands{
        make(tp::fp::PrecisionMode::Full, 1.0, 17.0, 10.0),
        make(tp::fp::PrecisionMode::Minimum, 0.5, 6.0, 8.0),
        make(tp::fp::PrecisionMode::Minimum, 0.25, 6.0, 30.0),
    };
    tt::Constraints c;
    c.min_digits = 5.0;
    const auto best = tt::select(cands, c);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->finest_dx, 0.25);  // finest wins when unconstrained

    c.max_seconds = 20.0;  // now the 0.25 run is too expensive
    const auto budgeted = tt::select(cands, c);
    ASSERT_TRUE(budgeted.has_value());
    EXPECT_EQ(budgeted->finest_dx, 0.5);
}

TEST(TradeSpace, SelectTieBreaksOnCost) {
    const std::vector<tt::Candidate> cands{
        make(tp::fp::PrecisionMode::Full, 0.5, 17.0, 10.0),
        make(tp::fp::PrecisionMode::Minimum, 0.5, 6.0, 4.0),
    };
    tt::Constraints c;
    c.min_digits = 5.0;
    const auto best = tt::select(cands, c);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->mode, tp::fp::PrecisionMode::Minimum);
}

TEST(TradeSpace, SelectReturnsNulloptWhenInfeasible) {
    const std::vector<tt::Candidate> cands{
        make(tp::fp::PrecisionMode::Minimum, 0.5, 6.0, 4.0),
    };
    tt::Constraints c;
    c.min_digits = 10.0;
    EXPECT_FALSE(tt::select(cands, c).has_value());
}

TEST(TradeSpace, ExploreRejectsUnknownArch) {
    auto sweep = tiny_sweep();
    sweep.arch = "not-a-machine";
    EXPECT_THROW((void)tt::explore(sweep), std::invalid_argument);
}

TEST(TradeSpace, ConstraintAccessors) {
    tt::Constraints c;
    tt::Candidate ok = make(tp::fp::PrecisionMode::Full, 1.0, 17.0, 1.0);
    EXPECT_TRUE(ok.feasible(c));
    ok.digits = 1.0;
    EXPECT_FALSE(ok.feasible(c));
}

TEST(TradeSpace, SelectEmptyCandidateList) {
    const std::vector<tt::Candidate> none;
    tt::Constraints c;
    EXPECT_FALSE(tt::select(none, c).has_value());
}

TEST(TradeSpace, EnergyConstraintFilters) {
    const std::vector<tt::Candidate> cands{
        make(tp::fp::PrecisionMode::Minimum, 0.5, 6.0, 4.0),  // 400 J
        make(tp::fp::PrecisionMode::Minimum, 0.25, 6.0, 9.0), // 900 J
    };
    tt::Constraints c;
    c.min_digits = 5.0;
    c.max_energy_joules = 500.0;
    const auto best = tt::select(cands, c);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->finest_dx, 0.5);  // the finer one is over the cap
}
