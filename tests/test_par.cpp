#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "par/comm.hpp"
#include "par/dist_shallow.hpp"
#include "par/reduce.hpp"
#include "util/rng.hpp"

namespace tpar = tp::par;

// ------------------------------------------------------------------- comm
TEST(VirtualComm, DeliversAfterExchange) {
    tpar::VirtualComm comm(3);
    comm.send(0, 2, 7, {1.0, 2.0});
    EXPECT_THROW((void)comm.recv(2, 0, 7), std::runtime_error);  // not yet
    comm.exchange();
    const auto m = comm.recv(2, 0, 7);
    EXPECT_EQ(m.source, 0);
    EXPECT_EQ(m.tag, 7);
    ASSERT_EQ(m.payload.size(), 2u);
    EXPECT_EQ(m.payload[1], 2.0);
    EXPECT_TRUE(comm.drained());
}

TEST(VirtualComm, MatchesSourceAndTag) {
    tpar::VirtualComm comm(2);
    comm.send(0, 1, 1, {1.0});
    comm.send(0, 1, 2, {2.0});
    comm.exchange();
    EXPECT_EQ(comm.recv(1, 0, 2).payload[0], 2.0);
    EXPECT_EQ(comm.recv(1, 0, 1).payload[0], 1.0);
    EXPECT_TRUE(comm.drained());
}

TEST(VirtualComm, ValidatesRanks) {
    tpar::VirtualComm comm(2);
    EXPECT_THROW(comm.send(0, 5, 0, {}), std::out_of_range);
    EXPECT_THROW((void)comm.recv(-1, 0, 0), std::out_of_range);
    EXPECT_THROW(tpar::VirtualComm{0}, std::invalid_argument);
}

// ----------------------------------------------------------------- reduce
namespace {

std::vector<double> reduction_workload(std::size_t n) {
    tp::util::Rng rng(2017);
    std::vector<double> xs(n);
    for (auto& v : xs)
        v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(0.0, 8.0));
    return xs;
}

/// Slice a flat array into `ranks` contiguous pieces (block rule).
std::vector<std::span<const double>> slice(const std::vector<double>& xs,
                                           int ranks) {
    std::vector<std::span<const double>> out;
    const std::size_t base = xs.size() / static_cast<std::size_t>(ranks);
    const std::size_t extra = xs.size() % static_cast<std::size_t>(ranks);
    std::size_t pos = 0;
    for (int r = 0; r < ranks; ++r) {
        const std::size_t len =
            base + (static_cast<std::size_t>(r) < extra ? 1 : 0);
        out.emplace_back(xs.data() + pos, len);
        pos += len;
    }
    return out;
}

}  // namespace

TEST(Allreduce, NaiveDependsOnRankCount) {
    const auto xs = reduction_workload(40000);
    const double s1 =
        tpar::allreduce_sum(slice(xs, 1), tpar::ReduceAlgorithm::Naive);
    bool any_different = false;
    for (const int r : {2, 3, 5, 8, 13}) {
        const double sr =
            tpar::allreduce_sum(slice(xs, r), tpar::ReduceAlgorithm::Naive);
        if (sr != s1) any_different = true;
    }
    EXPECT_TRUE(any_different)
        << "naive global sums should depend on the decomposition";
}

TEST(Allreduce, ReproducibleAndExactAreRankCountInvariant) {
    const auto xs = reduction_workload(40000);
    for (const auto algo : {tpar::ReduceAlgorithm::Reproducible,
                            tpar::ReduceAlgorithm::Exact}) {
        const double s1 = tpar::allreduce_sum(slice(xs, 1), algo);
        for (const int r : {2, 3, 5, 8, 13})
            EXPECT_EQ(tpar::allreduce_sum(slice(xs, r), algo), s1)
                << to_string(algo) << " ranks=" << r;
    }
}

TEST(Allreduce, ExactMatchesExpansionGroundTruth) {
    const auto xs = reduction_workload(10000);
    const double want = tp::sum::sum_exact(xs);
    EXPECT_EQ(tpar::allreduce_sum(slice(xs, 7),
                                  tpar::ReduceAlgorithm::Exact),
              want);
    // Kahan is accurate but, across ranks, not necessarily bitwise equal.
    EXPECT_NEAR(tpar::allreduce_sum(slice(xs, 7),
                                    tpar::ReduceAlgorithm::Kahan),
                want, std::fabs(want) * 1e-12);
}

TEST(Allreduce, MinIsExact) {
    const auto xs = reduction_workload(5000);
    double want = xs[0];
    for (const double v : xs) want = std::min(want, v);
    EXPECT_EQ(tpar::allreduce_min(slice(xs, 6)), want);
}

// ---------------------------------------------------------- dist solver
namespace {

tpar::DistConfig dist_cfg(int ranks, int n = 48) {
    tpar::DistConfig c;
    c.nx = c.ny = n;
    c.ranks = ranks;
    return c;
}

}  // namespace

TEST(DistShallow, StateBitwiseInvariantAcrossRankCounts) {
    // The headline property: with deterministic per-cell updates and
    // exact halo exchange, the evolved field does not depend on the
    // decomposition at all.
    tpar::DistFullSolver ref(dist_cfg(1));
    ref.initialize_dam_break();
    ref.run(50);
    const auto want = ref.gather_height();
    for (const int ranks : {2, 3, 4, 7}) {
        tpar::DistFullSolver s(dist_cfg(ranks));
        s.initialize_dam_break();
        s.run(50);
        const auto got = s.gather_height();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t k = 0; k < want.size(); ++k)
            ASSERT_EQ(got[k], want[k]) << "ranks=" << ranks << " k=" << k;
    }
}

TEST(DistShallow, MassDiagnosticReproducibilityByAlgorithm) {
    // Section III.C on live solver data: the exact reduction reports the
    // same mass bit-for-bit on every decomposition; naive generally not.
    std::vector<double> naive, exact;
    for (const int ranks : {1, 2, 3, 5, 8}) {
        tpar::DistFullSolver s(dist_cfg(ranks, 64));
        s.initialize_dam_break();
        s.run(40);
        naive.push_back(s.total_mass(tpar::ReduceAlgorithm::Naive));
        exact.push_back(s.total_mass(tpar::ReduceAlgorithm::Exact));
    }
    for (std::size_t k = 1; k < exact.size(); ++k)
        EXPECT_EQ(exact[k], exact[0]);
    bool naive_varies = false;
    for (std::size_t k = 1; k < naive.size(); ++k)
        if (naive[k] != naive[0]) naive_varies = true;
    EXPECT_TRUE(naive_varies);
    // Both agree to high accuracy even when not bitwise.
    for (std::size_t k = 0; k < naive.size(); ++k)
        EXPECT_NEAR(naive[k] / exact[k], 1.0, 1e-12);
}

TEST(DistShallow, MassConserved) {
    tpar::DistFullSolver s(dist_cfg(4));
    s.initialize_dam_break();
    const double m0 = s.total_mass(tpar::ReduceAlgorithm::Exact);
    s.run(60);
    EXPECT_NEAR(s.total_mass(tpar::ReduceAlgorithm::Exact) / m0, 1.0,
                1e-12);
}

TEST(DistShallow, SinglePrecisionTracksDouble) {
    tpar::DistFullSolver sd(dist_cfg(3));
    tpar::DistMinimumSolver ss(dist_cfg(3));
    sd.initialize_dam_break();
    ss.initialize_dam_break();
    sd.run(40);
    ss.run(40);
    const auto a = sd.gather_height();
    const auto b = ss.gather_height();
    double linf = 0.0, scale = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) {
        linf = std::max(linf, std::fabs(a[k] - b[k]));
        scale = std::max(scale, std::fabs(a[k]));
    }
    EXPECT_LT(linf / scale, 1e-4);  // several digits, per the paper
}

TEST(DistShallow, SymmetryPreserved) {
    tpar::DistFullSolver s(dist_cfg(4, 64));
    s.initialize_dam_break();
    s.run(60);
    const auto h = s.gather_height();
    const int n = 64;
    double asym = 0.0;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i)
            asym = std::max(asym,
                            std::fabs(h[static_cast<std::size_t>(j) * n + i] -
                                      h[static_cast<std::size_t>(n - 1 - j) * n + i]));
    EXPECT_LT(asym, 1e-10);
}

TEST(VirtualComm, ByteMessagesAndPooledBuffers) {
    tpar::VirtualComm comm(2);
    auto buf = comm.acquire(3);
    ASSERT_EQ(buf.size(), 3u);
    buf[0] = std::byte{0xAB};
    comm.send_bytes(0, 1, 4, std::move(buf));
    comm.exchange();
    auto m = comm.recv(1, 0, 4);
    ASSERT_EQ(m.bytes.size(), 3u);
    EXPECT_EQ(m.bytes[0], std::byte{0xAB});
    EXPECT_EQ(comm.bytes_sent(), 3u);
    // Returning the buffer lets the next acquire reuse it: steady-state
    // halo exchange allocates nothing.
    comm.release(std::move(m.bytes));
    EXPECT_EQ(comm.acquire(2).size(), 2u);
}

TEST(DistShallow, HaloTrafficScalesWithStorageWidth) {
    // The halo fix packs ghost rows in storage precision: a float solver
    // moves exactly half the bytes of a double solver on the same mesh
    // and step count. (Before the fix both shipped doubles, silently
    // promoting the minimum-precision halos.)
    const auto cfg = dist_cfg(4);
    tpar::DistMinimumSolver smin(cfg);
    tpar::DistFullSolver sful(cfg);
    smin.initialize_dam_break();
    sful.initialize_dam_break();
    smin.run(10);
    sful.run(10);
    EXPECT_GT(smin.halo_bytes_sent(), 0u);
    EXPECT_EQ(smin.halo_bytes_sent() * 2, sful.halo_bytes_sent());
}

TEST(DistShallow, RejectsBadConfig) {
    auto c = dist_cfg(8, 4);  // more ranks than rows
    EXPECT_THROW(tpar::DistFullSolver{c}, std::invalid_argument);
    c = dist_cfg(0);
    EXPECT_THROW(tpar::DistFullSolver{c}, std::invalid_argument);
}

// ----------------------------------------- cross-implementation validation
#include "analysis/linecut.hpp"
#include "shallow/solver.hpp"

TEST(DistShallow, MatchesSerialAmrSolverOnUniformGrid) {
    // Two independent implementations of the same discretization — the
    // AMR solver pinned to level 0 and the distributed uniform solver —
    // must agree to rounding on the same workload.
    const int n = 48, steps = 30;

    tp::shallow::Config scfg;
    scfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, 0};
    scfg.rezone_interval = 0;  // fixed mesh
    tp::shallow::FullShallowSolver serial(scfg);
    serial.initialize_dam_break({});

    tpar::DistConfig dcfg;
    dcfg.nx = dcfg.ny = n;
    dcfg.ranks = 3;
    tpar::DistFullSolver dist(dcfg);
    dist.initialize_dam_break();

    // March both with the same dt (the serial solver's CFL choice).
    for (int k = 0; k < steps; ++k) {
        serial.step();
        dist.step();
    }
    // Times track each other (same CFL logic on the same fields).
    EXPECT_NEAR(dist.time() / serial.time(), 1.0, 1e-6);

    const auto h = dist.gather_height();
    double linf = 0.0, scale = 0.0;
    for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) {
            const double x = (i + 0.5) * 100.0 / n;
            const double y = (j + 0.5) * 100.0 / n;
            const double a = serial.height_at(x, y);
            const double b = h[static_cast<std::size_t>(j) * n + i];
            linf = std::max(linf, std::fabs(a - b));
            scale = std::max(scale, std::fabs(a));
        }
    EXPECT_LT(linf / scale, 1e-10)
        << "independent implementations disagree";
}
