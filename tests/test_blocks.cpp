// Block-structured-AMR contracts (DESIGN.md §13) that need their own
// binary: the zero-steady-state-allocation guarantee of the blocked flux
// sweep and of the block-distributed solver is checked with a global
// operator-new counter (counters can't share a process with test_dist's),
// plus the blocked-vs-cell bitwise matrix, the BlockIndex lifecycle
// across rezones, the fill-mask/fallback partition invariant, the
// distributed block solver's decomposition-invariance matrix against the
// row-stripe solver, the per-phase halo byte accounting, and whole-block
// load balancing.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "fp/half_policy.hpp"
#include "mesh/block_tree.hpp"
#include "obs/trace.hpp"
#include "par/dist_blocks.hpp"
#include "par/dist_shallow.hpp"
#include "shallow/solver.hpp"

using namespace tp;
namespace tsh = tp::shallow;

// ------------------------------------------------- allocation bookkeeping

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

tsh::Config amr_config(int n, int levels, simd::Mode mode, bool blocks,
                       int rezone_interval = 4) {
    tsh::Config cfg;
    cfg.geom = {0.0, 0.0, 100.0, 100.0, n, n, levels};
    cfg.simd = mode;
    cfg.blocks = blocks;
    cfg.rezone_interval = rezone_interval;
    return cfg;
}

template <typename Policy>
std::string checkpoint_after(const tsh::Config& cfg, int steps) {
    tsh::ShallowWaterSolver<Policy> s(cfg);
    s.initialize_dam_break({});
    s.run(steps);
    std::ostringstream os(std::ios::binary);
    s.write_checkpoint(os);
    return std::move(os).str();
}

// --------------------------------------------- blocked-vs-cell bitwise

// The tile sweep groups cells into dense unit-stride blocks and the
// fallback list into gathered packs, but every lane still evaluates the
// identical per-cell flux expression — so for every policy, SIMD shape,
// and grid (rezoning throughout), the checkpoint must match the cell
// path's to the last bit.
template <typename Policy>
void blocked_matches_cell_matrix() {
    for (const auto mode : {simd::Mode::Scalar, simd::Mode::Native}) {
        for (const int grid : {12, 16, 24}) {
            const int levels = grid <= 16 ? 3 : 2;
            const int steps = 30;
            const auto cell = checkpoint_after<Policy>(
                amr_config(grid, levels, mode, false), steps);
            const auto blocked = checkpoint_after<Policy>(
                amr_config(grid, levels, mode, true), steps);
            EXPECT_EQ(blocked, cell)
                << "grid " << grid << ", native="
                << (mode == simd::Mode::Native);
        }
    }
}

TEST(BlockedSweepBitwise, MinimumPrecision) {
    blocked_matches_cell_matrix<fp::MinimumPrecision>();
}
TEST(BlockedSweepBitwise, MixedPrecision) {
    blocked_matches_cell_matrix<fp::MixedPrecision>();
}
TEST(BlockedSweepBitwise, FullPrecision) {
    blocked_matches_cell_matrix<fp::FullPrecision>();
}
TEST(BlockedSweepBitwise, HalfStoragePrecision) {
    blocked_matches_cell_matrix<fp::HalfStoragePrecision>();
}

// ------------------------------------------------- block index lifecycle

// After any run's worth of incremental apply_remap updates, the index
// must be element-wise identical to a from-scratch rebuild — and the
// incremental path must actually be incremental (some blocks translated,
// not all rebuilt).
TEST(BlockIndex, StaysConsistentAcrossRezones) {
    auto cfg = amr_config(24, 3, simd::Mode::Native, true,
                          /*rezone_interval=*/2);
    tsh::ShallowWaterSolver<fp::MixedPrecision> s(cfg);
    s.initialize_dam_break({});
    s.run(40);
    std::string why;
    EXPECT_TRUE(s.block_index().consistent_with(s.mesh(), &why)) << why;
    const auto& st = s.block_index().stats();
    EXPECT_GT(st.remaps, 0u);
    EXPECT_GT(st.blocks_translated, 0u);
}

// Fill-mask correctness after rezones: member bits name exactly the
// leaves at the block's level, regular bits are members whose four side
// neighbors are in-domain and same-or-coarser, and the solver-side tile
// list plus fallback cells partition the mesh (every cell computed
// exactly once per sweep).
TEST(BlockIndex, MasksAndFallbackPartitionTheMesh) {
    auto cfg = amr_config(16, 3, simd::Mode::Native, true,
                          /*rezone_interval=*/3);
    tsh::ShallowWaterSolver<fp::FullPrecision> s(cfg);
    s.initialize_dam_break({});
    s.run(25);

    const auto& mesh = s.mesh();
    const auto& index = s.block_index();
    for (const auto& b : index.blocks()) {
        const auto src = index.src(b);
        EXPECT_EQ(std::popcount(b.member_mask), b.members);
        EXPECT_EQ(b.regular_mask & ~b.member_mask, 0u);
        for (int jj = 0; jj < mesh::kBlockSize; ++jj) {
            for (int ii = 0; ii < mesh::kBlockSize; ++ii) {
                const std::int32_t i = b.bi * mesh::kBlockSize + ii;
                const std::int32_t j = b.bj * mesh::kBlockSize + jj;
                const auto leaf = mesh.leaf_index(b.level, i, j);
                const bool member =
                    (b.member_mask >> mesh::block_bit(ii, jj)) & 1u;
                EXPECT_EQ(member, leaf >= 0)
                    << "level " << b.level << " (" << i << ", " << j << ")";
                if (member) {
                    EXPECT_EQ(src[static_cast<std::size_t>(
                                  mesh::block_padded(ii, jj))],
                              leaf);
                }
                if ((b.regular_mask >> mesh::block_bit(ii, jj)) & 1u) {
                    // Four side neighbors covered by same-or-coarser
                    // in-domain leaves, per the padded source map.
                    const int p = mesh::block_padded(ii, jj);
                    for (const int off : {-1, +1, -mesh::kBlockPad,
                                          +mesh::kBlockPad}) {
                        const auto n = src[static_cast<std::size_t>(p + off)];
                        ASSERT_GE(n, 0);
                        EXPECT_LE(mesh.cells()[static_cast<std::size_t>(n)]
                                      .level,
                                  b.level);
                    }
                }
            }
        }
    }

    // Partition: dense-tile regular members plus fallback cells cover
    // every cell exactly once.
    std::vector<int> covered(mesh.num_cells(), 0);
    std::size_t tile = 0;
    for (const auto& b : index.blocks()) {
        const bool dense =
            std::popcount(b.regular_mask) >=
            tsh::ShallowWaterSolver<fp::FullPrecision>::kMinTileRegular;
        if (!dense) continue;
        ASSERT_LT(tile, s.tile_blocks().size());
        const auto& t = s.tile_blocks()[tile++];
        EXPECT_EQ(t.regular, b.regular_mask);
        for (int jj = 0; jj < mesh::kBlockSize; ++jj)
            for (int ii = 0; ii < mesh::kBlockSize; ++ii)
                if ((t.regular >> mesh::block_bit(ii, jj)) & 1u)
                    ++covered[static_cast<std::size_t>(
                        t.src[mesh::block_padded(ii, jj)])];
    }
    EXPECT_EQ(tile, s.tile_blocks().size());
    for (const auto c : s.fallback_cells())
        ++covered[static_cast<std::size_t>(c)];
    for (std::size_t c = 0; c < covered.size(); ++c)
        EXPECT_EQ(covered[c], 1) << "cell " << c;
}

// --------------------------------------------- zero steady-state allocs

// With rezoning disabled the blocked sweep's steady state — gather,
// tile kernels, fallback packs, scatter — must perform zero heap
// allocations, exactly like the cell path it replaces.
TEST(BlockedAllocations, SteadyStateStepIsAllocationFree) {
    auto cfg = amr_config(24, 2, simd::Mode::Native, true,
                          /*rezone_interval=*/0);
    tsh::ShallowWaterSolver<fp::MixedPrecision> s(cfg);
    s.initialize_dam_break({});
    s.run(3);  // warm every lazy scratch buffer
    const std::uint64_t before = g_allocs.load();
    s.run(5);
    EXPECT_EQ(g_allocs.load(), before) << "blocked sweep allocated in "
                                          "steady state";
}

// ------------------------------------------- distributed block solver

template <typename P>
par::DistConfig dist_config(int grid, int ranks, bool overlap,
                            simd::Mode mode, int block = 0,
                            int lb_interval = 0) {
    par::DistConfig cfg;
    cfg.nx = cfg.ny = grid;
    cfg.ranks = ranks;
    cfg.overlap = overlap;
    cfg.simd = mode;
    cfg.block = block;
    cfg.lb_interval = lb_interval;
    return cfg;
}

template <typename P>
std::vector<double> block_height_after(int grid, int steps, int ranks,
                                       bool overlap, simd::Mode mode,
                                       int block = 0, int lb_interval = 0) {
    par::BlockDistributedShallowSolver<P> s(
        dist_config<P>(grid, ranks, overlap, mode, block, lb_interval));
    s.initialize_dam_break();
    s.run(steps);
    EXPECT_TRUE(s.comm_drained());
    return s.gather_height();
}

// Decomposition-invariance matrix for the blocked solver, referenced
// against the row-stripe solver's 1-rank BSP scalar run: the height field
// must repeat to the last bit across rank counts, schedules, SIMD shapes,
// and block edges — including against the entirely different row
// decomposition, since every cell update reads only exact neighbor
// values and the wavespeed max is order-free.
template <typename P>
void block_invariance_matrix() {
    const int grid = 24, steps = 12;
    par::DistributedShallowSolver<P> rows(
        dist_config<P>(grid, 1, false, simd::Mode::Scalar));
    rows.initialize_dam_break();
    rows.run(steps);
    const auto ref = rows.gather_height();
    for (const int ranks : {1, 3, 9})
        for (const bool overlap : {false, true})
            for (const auto mode : {simd::Mode::Scalar, simd::Mode::Native})
                for (const int edge : {4, 8})
                    EXPECT_EQ(block_height_after<P>(grid, steps, ranks,
                                                    overlap, mode, edge),
                              ref)
                        << ranks << " ranks, overlap=" << overlap
                        << ", native=" << (mode == simd::Mode::Native)
                        << ", block edge " << edge;
}

TEST(BlockDistInvariance, MinimumPrecision) {
    block_invariance_matrix<fp::MinimumPrecision>();
}
TEST(BlockDistInvariance, MixedPrecision) {
    block_invariance_matrix<fp::MixedPrecision>();
}
TEST(BlockDistInvariance, FullPrecision) {
    block_invariance_matrix<fp::FullPrecision>();
}

// auto_block_edge picks the largest divisor that still gives every rank
// a block; cfg.block = 0 routes through it.
TEST(BlockDist, AutoBlockEdge) {
    EXPECT_EQ(par::auto_block_edge(48, 48, 3), 24);   // 4 blocks >= 3
    EXPECT_EQ(par::auto_block_edge(48, 48, 5), 16);   // 9 blocks >= 5
    EXPECT_EQ(par::auto_block_edge(64, 64, 4), 32);   // max_edge cap
    EXPECT_EQ(par::auto_block_edge(6, 6, 9), 2);      // 9 blocks exactly
    EXPECT_THROW((void)par::auto_block_edge(2, 2, 5), std::invalid_argument);
    EXPECT_EQ(block_height_after<fp::MixedPrecision>(24, 8, 3, true,
                                                     simd::Mode::Native, 0),
              block_height_after<fp::MixedPrecision>(24, 8, 3, true,
                                                     simd::Mode::Native, 8));
}

// ------------------------------------------------- per-phase halo bytes

// The ledger reports halo traffic per phase: "dist_halo_post" carries
// the posted payloads, "dist_halo_wait" any stragglers, and their sum
// must equal halo_bytes_sent() exactly — in both solvers and both
// schedules — with the overlap/BSP totals agreeing (same traffic, only
// the wait point moves).
template <typename Solver>
std::uint64_t ledger_halo_bytes(const Solver& s) {
    const auto* post = s.ledger().find("dist_halo_post");
    const auto* wait = s.ledger().find("dist_halo_wait");
    EXPECT_NE(post, nullptr);
    EXPECT_NE(wait, nullptr);
    std::uint64_t total = 0;
    if (post) total += post->bytes;
    if (wait) total += wait->bytes;
    return total;
}

TEST(HaloLedger, PerPhaseBytesSumToTotalAndMatchBsp) {
    std::uint64_t totals[2][2] = {};
    for (const bool blocks : {false, true}) {
        for (const bool overlap : {false, true}) {
            const auto cfg = dist_config<fp::MixedPrecision>(
                24, 3, overlap, simd::Mode::Native);
            std::uint64_t sent = 0, ledgered = 0;
            if (blocks) {
                par::BlockDistributedShallowSolver<fp::MixedPrecision> s(
                    cfg);
                s.initialize_dam_break();
                s.run(10);
                sent = s.halo_bytes_sent();
                ledgered = ledger_halo_bytes(s);
            } else {
                par::DistributedShallowSolver<fp::MixedPrecision> s(cfg);
                s.initialize_dam_break();
                s.run(10);
                sent = s.halo_bytes_sent();
                ledgered = ledger_halo_bytes(s);
            }
            EXPECT_GT(sent, 0u);
            EXPECT_EQ(ledgered, sent)
                << (blocks ? "blocks" : "rows") << ", overlap=" << overlap;
            totals[blocks][overlap] = sent;
        }
        // Overlap only moves the wait point; the traffic is identical.
        EXPECT_EQ(totals[blocks][0], totals[blocks][1]);
    }
}

// In the overlapped schedule every face payload is posted before the
// wait, so the post phase must carry all of the traffic.
TEST(HaloLedger, OverlapPostsAllBytesBeforeTheWait) {
    par::DistributedShallowSolver<fp::FullPrecision> s(
        dist_config<fp::FullPrecision>(24, 3, true, simd::Mode::Native));
    s.initialize_dam_break();
    s.run(5);
    const auto* post = s.ledger().find("dist_halo_post");
    const auto* wait = s.ledger().find("dist_halo_wait");
    ASSERT_NE(post, nullptr);
    ASSERT_NE(wait, nullptr);
    EXPECT_EQ(post->bytes, s.halo_bytes_sent());
    EXPECT_EQ(wait->bytes, 0u);
}

// The per-source-rank byte counters (the {"type":"dist"} record's
// halo_bytes array) partition the total exactly, and tracing the block
// solver perturbs nothing: the traced height field matches the untraced
// one bit for bit.
TEST(HaloLedger, PerRankBytesPartitionTotalAndTracingIsInvisible) {
    ASSERT_FALSE(obs::trace_enabled());
    const auto ref = block_height_after<fp::MixedPrecision>(
        24, 12, 3, true, simd::Mode::Native, 4, /*lb_interval=*/4);
    obs::trace_start(::testing::TempDir() + "blocks.trace.json");
    par::BlockDistributedShallowSolver<fp::MixedPrecision> s(
        dist_config<fp::MixedPrecision>(24, 3, true, simd::Mode::Native, 4,
                                        /*lb_interval=*/4));
    s.initialize_dam_break();
    s.run(12);
    EXPECT_GT(obs::trace_stop(), 0u);
    EXPECT_TRUE(s.comm_drained());
    EXPECT_EQ(s.gather_height(), ref);
    std::uint64_t per_rank_total = 0;
    for (int r = 0; r < 3; ++r) per_rank_total += s.halo_bytes_sent(r);
    EXPECT_GT(per_rank_total, 0u);
    EXPECT_EQ(per_rank_total, s.halo_bytes_sent());
}

// --------------------------------------------------- block load balance

// A skewed re-split moves whole blocks between ranks with zero state
// copies — the solution must match an undisturbed run bit-for-bit.
TEST(BlockLoadBalance, SkewedResplitCarriesStateExactly) {
    const int grid = 24, edge = 4;  // 36 blocks on 3 ranks
    auto cfg = dist_config<fp::FullPrecision>(grid, 3, true,
                                              simd::Mode::Native, edge);
    par::BlockDistributedShallowSolver<fp::FullPrecision> undisturbed(cfg);
    undisturbed.initialize_dam_break();
    undisturbed.run(10);

    par::BlockDistributedShallowSolver<fp::FullPrecision> resplit(cfg);
    resplit.initialize_dam_break();
    resplit.run(4);
    std::vector<double> skew(resplit.num_blocks(), 1.0);
    for (std::size_t b = 0; b < skew.size() / 3; ++b) skew[b] = 9.0;
    resplit.rebalance(skew);
    EXPECT_GE(resplit.lb_stats().resplits, 1u);
    EXPECT_GT(resplit.lb_stats().blocks_moved, 0u);
    resplit.run(6);

    EXPECT_EQ(resplit.gather_height(), undisturbed.gather_height());
    EXPECT_TRUE(resplit.comm_drained());
}

// Periodic measured-cost rebalancing is bitwise invisible too.
TEST(BlockLoadBalance, PeriodicLoadBalancingDoesNotChangeState) {
    const auto ref = block_height_after<fp::MixedPrecision>(
        24, 12, 3, true, simd::Mode::Native, 4, /*lb_interval=*/0);
    EXPECT_EQ(block_height_after<fp::MixedPrecision>(24, 12, 3, true,
                                                     simd::Mode::Native, 4,
                                                     /*lb_interval=*/4),
              ref);
}

// Uniform cost reproduces the static partition — no churn at balance.
TEST(BlockLoadBalance, UniformCostIsANoOp) {
    par::BlockDistributedShallowSolver<fp::FullPrecision> s(
        dist_config<fp::FullPrecision>(24, 4, true, simd::Mode::Native, 4));
    s.initialize_dam_break();
    const auto before = s.block_partition();
    const std::vector<double> uniform(s.num_blocks(), 1.0);
    s.rebalance(uniform);
    EXPECT_EQ(s.block_partition(), before);
    EXPECT_EQ(s.lb_stats().evaluations, 1u);
    EXPECT_EQ(s.lb_stats().resplits, 0u);
}

// Steady-state step() and total_mass() of the block solver allocate
// nothing, in either schedule — and because ownership is a pure range
// boundary, even a re-split that moves blocks stays allocation-free.
TEST(BlockDistAllocations, SteadyStateAndResplitAreAllocationFree) {
    for (const bool overlap : {false, true}) {
        par::BlockDistributedShallowSolver<fp::MixedPrecision> s(
            dist_config<fp::MixedPrecision>(24, 3, overlap,
                                            simd::Mode::Native, 4));
        s.initialize_dam_break();
        s.run(3);  // warm the comm pool and every lazy scratch buffer
        (void)s.total_mass();
        std::vector<double> skew(s.num_blocks(), 1.0);
        for (std::size_t b = 0; b < skew.size() / 2; ++b) skew[b] = 5.0;
        const std::uint64_t before = g_allocs.load();
        s.run(5);
        (void)s.total_mass();
        s.rebalance(skew);
        EXPECT_EQ(g_allocs.load(), before)
            << (overlap ? "overlap" : "BSP") << " schedule allocated in "
            << "steady state";
        EXPECT_TRUE(s.comm_drained());
    }
}

}  // namespace
