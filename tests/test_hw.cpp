#include <gtest/gtest.h>

#include "costmodel/aws.hpp"
#include "hw/archspec.hpp"
#include "hw/roofline.hpp"
#include "perf/counters.hpp"

namespace th = tp::hw;
namespace tc = tp::costmodel;

// ---------------------------------------------------------------- archspec
TEST(ArchSpec, PaperArchitecturesPresent) {
    const auto archs = th::paper_architectures();
    ASSERT_EQ(archs.size(), 6u);
    EXPECT_TRUE(th::find_architecture("Haswell E5-2660 v3").has_value());
    EXPECT_TRUE(th::find_architecture("GTX TITAN X").has_value());
    EXPECT_FALSE(th::find_architecture("nonexistent").has_value());
}

TEST(ArchSpec, TitanXHas32To1Ratio) {
    // The paper calls out the TITAN X's 32:1 SP:DP ratio vs <= 3:1 for the
    // compute parts; that ratio is the lever behind its 453% speedup.
    const auto titan = th::find_architecture("GTX TITAN X");
    ASSERT_TRUE(titan.has_value());
    EXPECT_NEAR(titan->sp_dp_ratio(), 32.0, 0.5);
    for (const auto& a : th::paper_architectures()) {
        if (a.name != "GTX TITAN X") {
            EXPECT_LE(a.sp_dp_ratio(), 3.01) << a.name;
        }
    }
}

TEST(ArchSpec, ClamrSubsetOmitsP100) {
    const auto v = th::clamr_architectures();
    EXPECT_EQ(v.size(), 5u);
    for (const auto& a : v) EXPECT_NE(a.name, "Tesla P100 SXM2");
}

TEST(ArchSpec, CpusAndGpusClassified) {
    int cpus = 0, gpus = 0;
    for (const auto& a : th::paper_architectures())
        (a.is_gpu() ? gpus : cpus)++;
    EXPECT_EQ(cpus, 2);
    EXPECT_EQ(gpus, 4);
}

// ---------------------------------------------------------------- roofline
namespace {
tp::perf::KernelWork sp_work(std::uint64_t flops, std::uint64_t bytes) {
    tp::perf::KernelWork w;
    w.flops_sp = flops;
    w.bytes = bytes;
    w.invocations = 1;
    return w;
}
tp::perf::KernelWork dp_work(std::uint64_t flops, std::uint64_t bytes) {
    tp::perf::KernelWork w;
    w.flops_dp = flops;
    w.bytes = bytes;
    w.invocations = 1;
    return w;
}
}  // namespace

TEST(Roofline, ComputeBoundVsMemoryBound) {
    const auto k40 = *th::find_architecture("Tesla K40m");
    th::PerfProjector proj(k40);
    // Huge flops, no bytes: compute bound.
    const auto tc1 = proj.project(dp_work(1'000'000'000'000ull, 8));
    EXPECT_FALSE(tc1.memory_bound());
    // Huge bytes, few flops: memory bound.
    const auto tm = proj.project(dp_work(8, 1'000'000'000'000ull));
    EXPECT_TRUE(tm.memory_bound());
}

TEST(Roofline, SpFasterThanDpWhenComputeBound) {
    const auto titan = *th::find_architecture("GTX TITAN X");
    th::PerfProjector proj(titan);
    const std::uint64_t f = 1'000'000'000'000ull;
    const double t_sp = proj.project(sp_work(f, 8)).total();
    const double t_dp = proj.project(dp_work(f, 8)).total();
    EXPECT_NEAR(t_dp / t_sp, titan.sp_dp_ratio(), 1.0);
}

TEST(Roofline, MemoryTimeScalesWithBytes) {
    const auto hw = *th::find_architecture("Haswell E5-2660 v3");
    th::PerfProjector proj(hw);
    const double t1 = proj.project(sp_work(0, 1'000'000'000)).total();
    const double t2 = proj.project(sp_work(0, 2'000'000'000)).total();
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(Roofline, UnvectorizedCollapsesSpDpGap) {
    // The paper's Table III: unvectorized kernels gain little from single
    // precision because scalar issue retires SP and DP at the same rate.
    const auto hw = *th::find_architecture("Haswell E5-2660 v3");
    th::ProjectionOptions scalar;
    scalar.vectorized = false;
    th::PerfProjector proj(hw, scalar);
    const std::uint64_t f = 1'000'000'000'000ull;
    const double t_sp = proj.project(sp_work(f, 8)).total();
    const double t_dp = proj.project(dp_work(f, 8)).total();
    EXPECT_NEAR(t_dp / t_sp, 1.0, 1e-9);
}

TEST(Roofline, ConversionsCostDpPipeOnGpu) {
    const auto k40 = *th::find_architecture("Tesla K40m");
    th::PerfProjector proj(k40);
    auto w = dp_work(1'000'000'000ull, 8);
    const double base = proj.project(w).total();
    w.convert_ops = 1'000'000'000ull;
    const double with_conv = proj.project(w).total();
    EXPECT_NEAR(with_conv / base, 2.0, 0.02);  // launch overhead skews a bit
}

TEST(Roofline, LaunchOverheadAdds) {
    const auto k40 = *th::find_architecture("Tesla K40m");
    th::PerfProjector proj(k40);
    tp::perf::KernelWork w;
    w.invocations = 1000;
    const auto t = proj.project(w);
    EXPECT_NEAR(t.overhead_seconds, 1000 * 8e-6, 1e-9);
}

TEST(Roofline, AppSecondsSumsKernels) {
    const auto hw = *th::find_architecture("Haswell E5-2660 v3");
    th::PerfProjector proj(hw);
    tp::perf::WorkLedger ledger;
    ledger.record("a", 0.0, 0, 1'000'000'000ull, 0);
    ledger.record("b", 0.0, 0, 2'000'000'000ull, 0);
    const double t = proj.project_app_seconds(ledger);
    const double ta = proj.project(*ledger.find("a")).total();
    const double tb = proj.project(*ledger.find("b")).total();
    EXPECT_DOUBLE_EQ(t, ta + tb);
}

TEST(Roofline, MemoryProjectionAddsOverheads) {
    const auto cpu = *th::find_architecture("Haswell E5-2660 v3");
    const auto gpu = *th::find_architecture("Tesla K40m");
    const std::uint64_t state = 100'000'000ull;
    EXPECT_GT(th::PerfProjector(cpu).project_memory_bytes(state),
              th::PerfProjector(gpu).project_memory_bytes(state));
    EXPECT_GT(th::PerfProjector(gpu).project_memory_bytes(state), state);
}

TEST(Energy, TdpTimesRuntime) {
    const auto hw = *th::find_architecture("Haswell E5-2660 v3");
    EXPECT_DOUBLE_EQ(th::energy_joules(hw, 10.0), 1050.0);
}

// --------------------------------------------------------------- cost model
TEST(CostModel, ComputeCostProportionalToRuntime) {
    const tc::AwsRates rates;
    const auto full =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(31.3, 0.128));
    const auto min =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(26.3, 0.086));
    EXPECT_NEAR(min.compute_dollars / full.compute_dollars, 26.3 / 31.3,
                1e-9);
}

TEST(CostModel, StorageCostTracksFileSize) {
    const tc::AwsRates rates;
    const auto full =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(31.3, 0.128));
    const auto min =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(31.3, 0.086));
    EXPECT_NEAR(min.storage_dollars / full.storage_dollars, 0.086 / 0.128,
                1e-9);
}

TEST(CostModel, ClamrSavingsMatchPaperShape) {
    // Paper Table VII: ~23% total savings minimum vs full, ~15% mixed.
    const tc::AwsRates rates;
    const auto full =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(31.3, 0.128));
    const auto mixed =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(29.9, 0.086));
    const auto min =
        tc::estimate_monthly_cost(rates, tc::clamr_scenario(26.3, 0.086));
    const double s_min = tc::savings_fraction(full, min);
    const double s_mixed = tc::savings_fraction(full, mixed);
    EXPECT_GT(s_min, s_mixed);
    EXPECT_NEAR(s_min, 0.23, 0.08);
    EXPECT_NEAR(s_mixed, 0.15, 0.08);
}

TEST(CostModel, SelfComputeHalved) {
    const tc::AwsRates rates;
    const auto a =
        tc::estimate_monthly_cost(rates, tc::self_scenario(100.0, 1.0));
    auto in = tc::self_scenario(100.0, 1.0);
    in.compute_scale = 1.0;
    const auto b = tc::estimate_monthly_cost(rates, in);
    EXPECT_NEAR(a.compute_dollars / b.compute_dollars, 0.5, 1e-9);
}

TEST(CostModel, RejectsBadInputs) {
    const tc::AwsRates rates;
    auto in = tc::clamr_scenario(10.0, 0.1);
    in.runtime_seconds = -1.0;
    EXPECT_THROW((void)tc::estimate_monthly_cost(rates, in),
                 std::invalid_argument);
    in = tc::clamr_scenario(10.0, 0.1);
    in.storage_reduction = 0.0;
    EXPECT_THROW((void)tc::estimate_monthly_cost(rates, in),
                 std::invalid_argument);
}

TEST(CostModel, SavingsFractionEdgeCases) {
    tc::CostBreakdown zero{};
    tc::CostBreakdown some{10.0, 5.0};
    EXPECT_EQ(tc::savings_fraction(zero, some), 0.0);
    EXPECT_DOUBLE_EQ(tc::savings_fraction(some, zero), 1.0);
    EXPECT_DOUBLE_EQ(some.total(), 15.0);
}

// ------------------------------------------------------------------ ledger
TEST(WorkLedger, AccumulatesAndTotals) {
    tp::perf::WorkLedger ledger;
    ledger.record("k", 1.0, 100, 200, 4096, 8);
    ledger.record("k", 0.5, 100, 0, 1024, 0);
    ledger.record("j", 0.25, 0, 50, 512, 0);
    const auto* k = ledger.find("k");
    ASSERT_NE(k, nullptr);
    EXPECT_DOUBLE_EQ(k->seconds, 1.5);
    EXPECT_EQ(k->flops_sp, 200u);
    EXPECT_EQ(k->flops_dp, 200u);
    EXPECT_EQ(k->convert_ops, 8u);
    EXPECT_EQ(k->invocations, 2u);
    const auto total = ledger.total();
    EXPECT_EQ(total.flops(), 450u);
    EXPECT_EQ(total.bytes, 5632u);
    EXPECT_EQ(ledger.find("missing"), nullptr);
}

TEST(WorkLedger, ArithmeticIntensity) {
    tp::perf::KernelWork w;
    w.flops_sp = 100;
    w.bytes = 50;
    EXPECT_DOUBLE_EQ(w.arithmetic_intensity(), 2.0);
    tp::perf::KernelWork none;
    EXPECT_EQ(none.arithmetic_intensity(), 0.0);
}

// ----------------------------------------------- cross-architecture sweeps
class ArchSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArchSweep, ProjectionBasicProperties) {
    const auto& arch =
        th::paper_architectures()[static_cast<std::size_t>(GetParam())];
    th::PerfProjector proj(arch);
    // Work with both compute and memory components.
    tp::perf::KernelWork w;
    w.flops_sp = 1'000'000'000ull;
    w.flops_dp = 1'000'000'000ull;
    w.bytes = 1'000'000'000ull;
    w.bytes_compute = 500'000'000ull;
    w.invocations = 10;
    const auto t = proj.project(w);
    EXPECT_GT(t.compute_seconds, 0.0);
    EXPECT_GT(t.memory_seconds, 0.0);
    EXPECT_GE(t.total(), std::max(t.compute_seconds, t.memory_seconds));
    // Energy is TDP-scaled and positive.
    EXPECT_GT(th::energy_joules(arch, t.total()), 0.0);
    // Doubling all work at least doubles neither-component-shrinks.
    tp::perf::KernelWork w2 = w;
    w2 += w;
    const auto t2 = proj.project(w2);
    EXPECT_NEAR(t2.total(), 2.0 * t.total(), 0.05 * t.total());
}

TEST_P(ArchSweep, UnvectorizedNeverFasterOnCpu) {
    const auto& arch =
        th::paper_architectures()[static_cast<std::size_t>(GetParam())];
    th::ProjectionOptions vec, scal;
    scal.vectorized = false;
    tp::perf::KernelWork w;
    w.flops_dp = 10'000'000'000ull;
    w.bytes = 1'000'000ull;
    const double tv = th::PerfProjector(arch, vec).project(w).total();
    const double ts = th::PerfProjector(arch, scal).project(w).total();
    if (arch.is_gpu())
        EXPECT_DOUBLE_EQ(tv, ts);  // flag only models CPU SIMD
    else
        EXPECT_GT(ts, tv);
}

INSTANTIATE_TEST_SUITE_P(AllArchs, ArchSweep, ::testing::Range(0, 6));

TEST(Roofline, ComputeTrafficFractionDiffersByPlatform) {
    tp::perf::KernelWork w;
    w.bytes_compute = 1'000'000'000ull;
    const auto cpu = *th::find_architecture("Haswell E5-2660 v3");
    const auto gpu = *th::find_architecture("Tesla K40m");
    th::ProjectionOptions opt;
    opt.include_launch_overhead = false;
    const double t_cpu =
        th::PerfProjector(cpu, opt).project(w).memory_seconds *
        cpu.mem_bw_gbs;
    const double t_gpu =
        th::PerfProjector(gpu, opt).project(w).memory_seconds *
        gpu.mem_bw_gbs;
    // Same bandwidth-normalized traffic: the GPU streams 4x more of the
    // compute-precision temporaries than the cache-rich CPU absorbs.
    EXPECT_NEAR(t_gpu / t_cpu, 4.0, 0.3);
}
